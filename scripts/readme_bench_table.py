#!/usr/bin/env python3
"""Regenerate the README benchmark table from ``benchmarks/results/BENCH_*.json``.

The README's performance table is *derived state*: every number in it comes
from a committed benchmark artifact.  This script rebuilds the table between
the ``<!-- bench-table:begin -->`` / ``<!-- bench-table:end -->`` markers in
``README.md`` so the table cannot drift from the artifacts — regenerate the
JSON (see ``docs/benchmarks.md``), rerun this script, commit both.

Usage::

    python scripts/readme_bench_table.py          # rewrite README.md in place
    python scripts/readme_bench_table.py --check  # exit 1 if the table is stale

``--check`` runs in CI next to the docs link check, so a PR that changes the
artifacts without refreshing the README fails fast.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
README = REPO_ROOT / "README.md"
RESULTS = REPO_ROOT / "benchmarks" / "results"
BEGIN = "<!-- bench-table:begin -->"
END = "<!-- bench-table:end -->"

#: Artifacts folded into the single CI-gate row instead of getting their own.
SMOKE_NAMES = (
    "BENCH_distributed_smoke",
    "BENCH_streaming_smoke",
    "BENCH_offline_pool_smoke",
    "BENCH_scenarios_smoke",
    "BENCH_service_soak_smoke",
    "BENCH_city_scale_smoke",
    "BENCH_optimality_gap_smoke",
    "BENCH_rolling_horizon_smoke",
    "BENCH_observability_smoke",
)


def _load(name: str) -> dict | None:
    path = RESULTS / f"{name}.json"
    if not path.is_file():
        return None
    return json.loads(path.read_text(encoding="utf-8"))


def _parity(flag) -> str:
    return "parity ✓" if flag else "parity ✗"


def _row_distributed_scaling(d: dict) -> list[str]:
    return [
        "`BENCH_distributed_scaling.json` — offline process fan-out",
        f"{d['task_count']} tasks, {d['driver_count']} drivers, "
        f"{d['shard_count']} shards, {d['worker_count']} workers",
        f"{_parity(d['solution_parity'])}, critical-path speedup "
        f"**{d['critical_path_speedup']:.2f}×**, wall {d['wall_serial_s']:.2f}s "
        f"serial → {d['wall_process_s']:.2f}s pooled",
    ]


def _row_streaming_append(d: dict) -> list[str]:
    return [
        "`BENCH_streaming_append.json` — incremental task maps",
        f"{d['task_count']} tasks, {d['driver_count']} drivers, "
        f"{d['batch_count']} batches",
        f"stream cost **{d['streaming_over_rebuild']:.2f}×** of per-batch rebuild "
        f"({d['streaming_total_s']:.2f}s vs {d['rebuild_total_s']:.2f}s), "
        "bit-identical state",
    ]


def _row_streaming_shards(d: dict) -> list[str]:
    runs = d.get("runs_by_workers", {})
    widths = "/".join(sorted(runs, key=int))
    best_cp = max(
        (run["critical_path_speedup"] for run in runs.values()), default=0.0
    )
    return [
        "`BENCH_streaming_shards.json` — live stream on the persistent pool",
        f"{d['task_count']} tasks, {d['driver_count']} drivers, "
        f"{d['shard_count']} shards, {d['batch_count']} windows",
        f"{_parity(d['solution_parity'])} at {widths} workers, critical-path "
        f"speedup **{best_cp:.1f}×**, serial stream {d['wall_serial_s']:.2f}s",
    ]


def _row_offline_pool(d: dict) -> list[str]:
    balance = d["load_balance"]
    return [
        "`BENCH_offline_pool.json` — offline re-solves on the warm pool",
        f"{d['task_count']} tasks, {d['driver_count']} drivers, "
        f"{d['shard_count']} shards, {d['rounds']}× re-solve",
        f"{_parity(d['solution_parity'])} (pool == fork), warm-pool speedup "
        f"**{d['warm_pool_speedup']:.2f}×**, max/mean shard load "
        f"{balance['max_over_mean_grid']:.2f} → "
        f"**{balance['max_over_mean_presplit']:.2f}** after load-aware pre-split",
    ]


def _row_scenarios(d: dict) -> list[str]:
    stream_rows = [row for row in d.get("rows", []) if row["mode"] == "stream-batched"]
    serve = [row["serve_rate"] for row in stream_rows]
    skew = [row["shard_skew"] for row in stream_rows]
    spread = (
        f"streamed serve rate {min(serve):.2f}–{max(serve):.2f}, "
        f"shard skew up to {max(skew):.2f}"
        if stream_rows
        else "see the artifact"
    )
    return [
        "`BENCH_scenarios.json` — scenario engine (declarative city days)",
        f"{d['scenario_count']} scenarios, ≤ {d['task_count']} tasks, "
        f"{d['worker_count']} workers, {d['grid']} grid",
        f"{_parity(d['solution_parity'])} (compile deterministic + offline/stream "
        f"executors + stream == replay), {spread}",
    ]


def _row_smokes(artifacts: dict[str, dict]) -> list[str] | None:
    present = [name for name in SMOKE_NAMES if name in artifacts]
    if not present:
        return None
    tasks = [
        artifacts[name].get("task_count", artifacts[name].get("orders"))
        for name in present
    ]
    all_parity = all(
        artifacts[name].get(
            "solution_parity",
            artifacts[name].get("parity_ok", artifacts[name].get("executor_parity")),
        )
        for name in present
    )
    label = " / ".join(f"`{name}.json`" for name in present)
    return [
        f"{label} — CI gates",
        f"{min(tasks)}–{max(tasks)} tasks, 2 workers",
        f"{_parity(all_parity)}; speedup ≥ 1 enforced on ≥ 2-core runners",
    ]


def _row_service_soak(d: dict) -> list[str]:
    latency = d["dispatch_latency"]
    return [
        "`BENCH_service_soak.json` — asyncio dispatch service soak",
        f"{d['orders']} orders, {d['cities']} cities × {d['epochs']} epochs, "
        f"{d['grid']} grid, {d['executor']} pools",
        f"{_parity(d['parity_ok'])} (service == replay over "
        f"{d['parity_checked_epochs']} epochs), dispatch p50 "
        f"**{latency['p50_ms']:.0f}ms** / p99 **{latency['p99_ms']:.0f}ms**, "
        f"{d['orders_per_second']:.0f} orders/s",
    ]


def _row_city_scale(d: dict) -> list[str]:
    offline = d["offline"]
    return [
        "`BENCH_city_scale.json` — zero-copy shm transport vs pickle",
        f"{d['task_count']} tasks, {d['driver_count']} drivers, "
        f"{d['worker_count']} workers",
        f"{_parity(d['solution_parity'])} (shm == pickle == serial), "
        f"**{d['bytes_over_pipe_ratio']:.0f}×** fewer bytes over the pipe "
        f"({offline['pickle']['bytes_over_pipe']} → "
        f"{offline['shm']['bytes_over_pipe']} B), "
        f"{d['streaming']['shm']['segment_reuses']} segment reuses streaming, "
        f"critical-path speedup **{d['critical_path_speedup']:.2f}×**",
    ]


def _row_optimality_gap(d: dict) -> list[str]:
    records = d.get("records", {})
    greedy_gaps = [r["greedy_gap"] for r in records.values()]
    auto_greedy = sum(r["auto_greedy_shards"] for r in records.values())
    auto_total = auto_greedy + sum(r["auto_lp_shards"] for r in records.values())
    parity = d.get("lp_parity", False) and d.get("auto_parity", False)
    return [
        "`BENCH_optimality_gap.json` — exact tier (LP) with certified error bars",
        f"{d['scenario_count']} scenarios, {d['worker_count']} workers, "
        f"{d['grid']} grid",
        f"{_parity(parity)} (lp/auto merges across executors), shipped gap "
        f"≤ **{d['max_optimality_gap']:.2%}**, greedy error bar "
        f"{min(greedy_gaps):.2%}–{max(greedy_gaps):.2%}, auto kept greedy on "
        f"{auto_greedy}/{auto_total} shards",
    ]


def _row_rolling_horizon(d: dict) -> list[str]:
    records = d["comparison"]
    serve_deltas = [r["serve_rate_delta"] for r in records.values()]
    wait_deltas = [r["mean_wait_delta_s"] for r in records.values()]
    degradation = all(r["horizon1_equals_myopic"] for r in records.values())
    return [
        "`BENCH_rolling_horizon.json` — rolling-horizon dispatch vs myopic",
        f"{d['scenario_count']} scenarios, horizon {d['horizon']} + "
        f"{d['overlap']} overlap blocks, {d['forecast']} forecast",
        f"{_parity(degradation)} (horizon=1 == myopic), improved serve rate "
        f"AND wait on **{d['improved_both_count']}/{d['scenario_count']}** "
        f"scenarios, serve rate up to **{max(serve_deltas):+.3f}**, mean wait "
        f"down to **{min(wait_deltas):+.0f}s**",
    ]


def _row_observability(d: dict) -> list[str]:
    phases = d["phase_seconds"]
    hot = max(phases, key=phases.get)
    return [
        "`BENCH_observability.json` — flight-recorder overhead budgets",
        f"{d['task_count']} tasks, {d['driver_count']} drivers, "
        f"{d['rounds']}× interleaved rounds",
        f"{_parity(d['solution_parity'])} (traced == untraced), traced overhead "
        f"**{d['traced_overhead_pct']:.2f}%** (< 5%), disabled "
        f"**{d['disabled_overhead_pct']:.2f}%** (< 1%, "
        f"{d['disabled_span_cost_ns']:.0f}ns/span), hottest phase "
        f"{hot} {phases[hot]:.3f}s of {d['span_count']} spans",
    ]


ROW_BUILDERS = {
    "BENCH_distributed_scaling": _row_distributed_scaling,
    "BENCH_streaming_append": _row_streaming_append,
    "BENCH_streaming_shards": _row_streaming_shards,
    "BENCH_offline_pool": _row_offline_pool,
    "BENCH_scenarios": _row_scenarios,
    "BENCH_service_soak": _row_service_soak,
    "BENCH_city_scale": _row_city_scale,
    "BENCH_optimality_gap": _row_optimality_gap,
    "BENCH_rolling_horizon": _row_rolling_horizon,
    "BENCH_observability": _row_observability,
}


def build_table() -> str:
    artifacts = {
        path.stem: json.loads(path.read_text(encoding="utf-8"))
        for path in sorted(RESULTS.glob("BENCH_*.json"))
    }
    rows: list[list[str]] = []
    for name, builder in ROW_BUILDERS.items():
        if name in artifacts:
            rows.append(builder(artifacts[name]))
    unknown = [
        name
        for name in artifacts
        if name not in ROW_BUILDERS and name not in SMOKE_NAMES
    ]
    for name in unknown:
        d = artifacts[name]
        workload = ", ".join(
            f"{d[key]} {key.removesuffix('_count')}s"
            for key in ("task_count", "driver_count")
            if key in d
        )
        rows.append([f"`{name}.json`", workload or "—", "see the artifact"])
    smoke_row = _row_smokes(artifacts)
    if smoke_row:
        rows.append(smoke_row)

    cpu_counts = sorted({d.get("cpu_count") for d in artifacts.values() if d.get("cpu_count")})
    cpu_note = "/".join(str(c) for c in cpu_counts) or "?"
    lines = [
        f"| benchmark (source JSON) | workload | key numbers ({cpu_note}-core container) |",
        "|---|---|---|",
    ]
    lines += ["| " + " | ".join(cells) + " |" for cells in rows]
    return "\n".join(lines)


def main(argv: list[str]) -> int:
    check = "--check" in argv
    text = README.read_text(encoding="utf-8")
    try:
        head, rest = text.split(BEGIN, 1)
        _stale, tail = rest.split(END, 1)
    except ValueError:
        print(
            f"error: {README} is missing the {BEGIN} / {END} markers",
            file=sys.stderr,
        )
        return 2
    rebuilt = f"{head}{BEGIN}\n{build_table()}\n{END}{tail}"
    if rebuilt == text:
        print("README benchmark table is up to date")
        return 0
    if check:
        print(
            "README benchmark table is stale: run "
            "`python scripts/readme_bench_table.py` and commit the result",
            file=sys.stderr,
        )
        return 1
    README.write_text(rebuilt, encoding="utf-8")
    print("README benchmark table regenerated")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
