"""Tests for rolling-horizon dispatch (repro.online.horizon + batch wiring).

The in-process half of parity contract 18:

* ``horizon=1`` degrades bit-identically to the myopic dispatcher, on both
  the replayed ``run()`` and the streamed ``run_stream()`` paths;
* a *flat* time-indexed travel model reproduces the plain model's outputs
  bit for bit;
* under a genuinely time-varying model, stream == replay still holds;
* the oracle forecaster is rejected at ``stream_begin`` (the future is
  unknown on a live stream);
* the planner/heatmap building blocks behave (pressure bounded, bias
  bounded, repositioning moves drivers toward forecast demand).
"""

import numpy as np
import pytest

from repro.geo import PORTO, TimeVaryingTravelModel
from repro.market import StreamingMarketInstance
from repro.market.cost import MarketCostModel
from repro.market.instance import MarketInstance
from repro.online import BatchedSimulator, LookaheadPlanner, ZoneGrid
from repro.online.batch import BatchConfig, stream_schedule
from repro.online.horizon import ForecastHeatmap

from ..conftest import build_random_instance, flat_travel_model


def outcome_fingerprint(outcome) -> tuple:
    return (
        tuple((r.driver_id, r.task_indices, r.profit) for r in outcome.records),
        outcome.total_value,
        outcome.total_wait_s,
        tuple(sorted(outcome.rejected_tasks)),
    )


def with_travel_model(instance: MarketInstance, travel_model) -> MarketInstance:
    return MarketInstance.create(
        drivers=instance.drivers,
        tasks=instance.tasks,
        cost_model=MarketCostModel(travel_model),
    )


def run_streamed(instance: MarketInstance, config: BatchConfig):
    schedule = stream_schedule(instance.tasks, config.window_s)
    streaming = StreamingMarketInstance(
        drivers=instance.drivers, cost_model=instance.cost_model
    )
    return BatchedSimulator(streaming, config).run_stream(schedule)


HORIZON_CONFIG = dict(horizon=8, overlap=2, window_s=60.0)


class TestConfigValidation:
    def test_horizon_knobs_validated(self):
        with pytest.raises(ValueError):
            BatchConfig(horizon=0)
        with pytest.raises(ValueError):
            BatchConfig(overlap=-1)
        with pytest.raises(ValueError):
            BatchConfig(overlap_factor=0)
        with pytest.raises(ValueError):
            BatchConfig(forecast="psychic")
        with pytest.raises(ValueError):
            BatchConfig(forecast_alpha=0.0)
        with pytest.raises(ValueError):
            BatchConfig(lookahead_weight=-0.1)

    def test_oracle_rejected_on_live_stream(self):
        instance = build_random_instance(task_count=10, driver_count=3, seed=11)
        streaming = StreamingMarketInstance(
            drivers=instance.drivers, cost_model=instance.cost_model
        )
        simulator = BatchedSimulator(
            streaming, BatchConfig(window_s=60.0, horizon=4, forecast="oracle")
        )
        with pytest.raises(ValueError, match="oracle"):
            simulator.stream_begin()

    def test_oracle_allowed_on_replay(self):
        instance = build_random_instance(task_count=10, driver_count=3, seed=11)
        config = BatchConfig(window_s=60.0, horizon=4, forecast="oracle")
        outcome = BatchedSimulator(instance, config).run()
        assert outcome.served_count + len(outcome.rejected_tasks) == instance.task_count


class TestHorizonOneIsMyopic:
    """horizon=1 must add exactly nothing (contract 18's degradation leg)."""

    def test_replay_bit_identical(self):
        instance = build_random_instance(task_count=40, driver_count=8, seed=21)
        myopic = BatchedSimulator(instance, BatchConfig(window_s=60.0)).run()
        degraded = BatchedSimulator(
            instance, BatchConfig(window_s=60.0, horizon=1, overlap=0)
        ).run()
        assert outcome_fingerprint(degraded) == outcome_fingerprint(myopic)

    def test_stream_bit_identical(self):
        instance = build_random_instance(task_count=40, driver_count=8, seed=22)
        myopic = run_streamed(instance, BatchConfig(window_s=60.0))
        degraded = run_streamed(instance, BatchConfig(window_s=60.0, horizon=1))
        assert outcome_fingerprint(degraded) == outcome_fingerprint(myopic)


class TestFlatProfileParity:
    """A flat time-indexed profile is the plain model, bit for bit."""

    def test_replay_bit_identical(self):
        instance = build_random_instance(task_count=40, driver_count=8, seed=23)
        plain = instance.cost_model.travel_model
        flat = TimeVaryingTravelModel(
            base=plain, window_s=900.0,
            speed_factors=(1.0,) * 8, cost_factors=(1.0,) * 8,
        )
        config = BatchConfig(window_s=60.0)
        baseline = BatchedSimulator(instance, config).run()
        flat_run = BatchedSimulator(with_travel_model(instance, flat), config).run()
        assert outcome_fingerprint(flat_run) == outcome_fingerprint(baseline)

    def test_replay_bit_identical_under_horizon(self):
        instance = build_random_instance(task_count=40, driver_count=8, seed=24)
        plain = instance.cost_model.travel_model
        flat = TimeVaryingTravelModel(base=plain)
        config = BatchConfig(**HORIZON_CONFIG)
        baseline = BatchedSimulator(instance, config).run()
        flat_run = BatchedSimulator(with_travel_model(instance, flat), config).run()
        assert outcome_fingerprint(flat_run) == outcome_fingerprint(baseline)


class TestTimeVaryingModel:
    def make_time_varying_instance(self, seed=25):
        instance = build_random_instance(task_count=40, driver_count=8, seed=seed)
        tasks = instance.tasks
        publishable = [t for t in tasks if t.is_publishable]
        origin = min(t.publish_ts for t in publishable)
        span = max(t.start_deadline_ts for t in tasks) - origin
        window = max(span / 6.0, 1.0)
        varying = TimeVaryingTravelModel(
            base=instance.cost_model.travel_model,
            window_s=window,
            speed_factors=(1.0, 0.7, 0.7, 1.0, 1.2, 1.0),
            cost_factors=(1.0, 1.1, 1.1, 1.0, 1.0, 1.0),
            origin_ts=origin,
        )
        return with_travel_model(instance, varying)

    def test_time_variation_changes_outcomes(self):
        instance = self.make_time_varying_instance()
        plain = with_travel_model(
            instance, instance.cost_model.travel_model.base
        )
        config = BatchConfig(window_s=60.0)
        varying_run = BatchedSimulator(instance, config).run()
        plain_run = BatchedSimulator(plain, config).run()
        assert outcome_fingerprint(varying_run) != outcome_fingerprint(plain_run)

    def test_stream_equals_replay(self):
        instance = self.make_time_varying_instance(seed=26)
        config = BatchConfig(window_s=60.0)
        replay = BatchedSimulator(instance, config).run()
        streamed = run_streamed(instance, config)
        assert outcome_fingerprint(streamed) == outcome_fingerprint(replay)

    def test_stream_equals_replay_under_horizon(self):
        instance = self.make_time_varying_instance(seed=27)
        config = BatchConfig(**HORIZON_CONFIG)
        replay = BatchedSimulator(instance, config).run()
        streamed = run_streamed(instance, config)
        assert outcome_fingerprint(streamed) == outcome_fingerprint(replay)

    def test_task_costs_resolve_at_pickup_deadline(self):
        instance = self.make_time_varying_instance(seed=28)
        model = instance.cost_model
        varying = model.travel_model
        for task in instance.tasks[:10]:
            window_model = varying.at(task.start_deadline_ts)
            distance = model.task_distance_km(task)
            assert model.task_cost(task) == window_model.cost_for_distance(distance)
            assert model.task_duration_s(task) == window_model.time_for_distance_s(
                distance
            )


class TestPlannerMechanics:
    def make_planner(self, forecast="ewma", **overrides):
        instance = build_random_instance(task_count=30, driver_count=6, seed=31)
        kwargs = dict(HORIZON_CONFIG, forecast=forecast)
        kwargs.update(overrides)
        planner = LookaheadPlanner.build(instance, BatchConfig(**kwargs))
        assert planner is not None
        return planner, instance

    def test_build_without_fleet_returns_none(self):
        empty = MarketInstance.create(
            drivers=[],
            tasks=build_random_instance(task_count=5, seed=31).tasks,
            cost_model=MarketCostModel(flat_travel_model()),
        )
        assert LookaheadPlanner.build(empty, BatchConfig(**HORIZON_CONFIG)) is None

    def test_pressure_normalised_to_unit_interval(self):
        planner, instance = self.make_planner()
        planner.observe_window(0, instance.tasks)
        pressure = np.array(
            [planner.pressure_at(c) for c in planner.grid.centers]
        )
        assert pressure.max() == pytest.approx(1.0)
        assert (pressure >= 0.0).all() and (pressure <= 1.0).all()

    def test_pair_bias_bounded_by_weight_times_scale(self):
        planner, instance = self.make_planner()
        planner.observe_window(0, instance.tasks)
        states = [type("S", (), {"location": c})() for c in planner.grid.centers]
        price_scale = 7.5
        for task in instance.tasks[:10]:
            for state in states:
                bias = planner.pair_bias(task, state, price_scale)
                assert abs(bias) <= planner.lookahead_weight * price_scale + 1e-12

    def test_zero_weight_means_zero_bias(self):
        planner, instance = self.make_planner(lookahead_weight=0.0)
        planner.observe_window(0, instance.tasks)
        state = type("S", (), {"location": planner.grid.centers[0]})()
        assert planner.pair_bias(instance.tasks[0], state, 10.0) == 0.0


class TestForecastHeatmap:
    def test_heatmap_normalises_to_mean_positive_zone(self):
        grid = ZoneGrid(PORTO, rows=2, cols=2)
        heatmap = ForecastHeatmap(grid)
        heatmap.update(np.array([3.0, 1.0, 0.0, 0.0]))
        # mean positive count is 2.0 -> scale 0.5
        assert heatmap.demand_at(grid.centers[0], 0.0) == pytest.approx(1.5)
        assert heatmap.demand_at(grid.centers[2], 0.0) == 0.0

    def test_hottest_zones_ranked_and_truncated_at_zero(self):
        grid = ZoneGrid(PORTO, rows=2, cols=2)
        heatmap = ForecastHeatmap(grid)
        heatmap.update(np.array([1.0, 4.0, 0.0, 2.0]))
        zones = heatmap.hottest_zones(0.0, top=4)
        assert [grid.zone_of(p) for p, _ in zones] == [1, 3, 0]
        with pytest.raises(ValueError):
            heatmap.hottest_zones(0.0, top=0)

    def test_empty_field_has_no_hot_zones(self):
        grid = ZoneGrid(PORTO, rows=2, cols=2)
        heatmap = ForecastHeatmap(grid)
        heatmap.update(np.zeros(4))
        assert heatmap.hottest_zones(0.0) == []
        assert heatmap.demand_at(grid.centers[0], 0.0) == 0.0


class TestHorizonEffect:
    def test_oracle_horizon_changes_dispatch(self):
        """Lookahead with a real forecast must actually reshape the run."""
        instance = build_random_instance(task_count=100, driver_count=12, seed=33)
        myopic = BatchedSimulator(instance, BatchConfig(window_s=60.0)).run()
        horizon = BatchedSimulator(
            instance,
            BatchConfig(window_s=60.0, horizon=16, overlap=4, forecast="oracle"),
        ).run()
        assert outcome_fingerprint(horizon) != outcome_fingerprint(myopic)

    def test_horizon_run_is_deterministic(self):
        instance = build_random_instance(task_count=40, driver_count=8, seed=34)
        config = BatchConfig(window_s=60.0, horizon=8, overlap=2, forecast="oracle")
        first = BatchedSimulator(instance, config).run()
        second = BatchedSimulator(instance, config).run()
        assert outcome_fingerprint(first) == outcome_fingerprint(second)
