"""Tests for the event-driven online simulator (Algorithms 3 and 4)."""

import pytest

from repro.core import Objective
from repro.geo import GeoPoint
from repro.market import Driver, MarketCostModel, MarketInstance, Task
from repro.offline import exact_optimum, lp_relaxation_bound
from repro.online import (
    MaxMarginDispatcher,
    NearestDispatcher,
    OnlineSimulator,
    SimulationConfig,
    TaskOrdering,
    run_online,
)

from ..conftest import build_chain_instance, build_random_instance, flat_travel_model, point_east


@pytest.fixture(scope="module")
def chain():
    return build_chain_instance()


@pytest.fixture(scope="module")
def random_instance():
    return build_random_instance(task_count=40, driver_count=10, seed=23)


class TestSimulatorOnChainInstance:
    def test_chainer_serves_both_tasks(self, chain):
        outcome = run_online(chain, MaxMarginDispatcher())
        assert outcome.record_for("chainer").task_indices == (0, 1)
        assert outcome.record_for("stranded").task_indices == ()
        assert outcome.total_value == pytest.approx(10.0, rel=0.02)
        assert outcome.serve_rate == 1.0
        assert outcome.rejected_tasks == ()

    def test_nearest_also_serves_both(self, chain):
        outcome = run_online(chain, NearestDispatcher())
        assert outcome.served_count == 2

    def test_dispatcher_name_recorded(self, chain):
        assert run_online(chain, NearestDispatcher()).dispatcher_name == "nearest"
        assert run_online(chain, MaxMarginDispatcher()).dispatcher_name == "maxMargin"


class TestCandidateFiltering:
    def _single_task_instance(self, driver: Driver) -> MarketInstance:
        task = Task(
            task_id="m",
            publish_ts=400.0,
            source=point_east(5.0),
            destination=point_east(10.0),
            start_deadline_ts=1000.0,
            end_deadline_ts=1800.0,
            price=6.0,
            distance_km=5.0,
        )
        return MarketInstance.create(
            drivers=[driver], tasks=[task], cost_model=MarketCostModel(flat_travel_model())
        )

    def test_driver_too_far_to_arrive_in_time_is_rejected(self):
        # 10 km away, order published 600 s before the pickup deadline:
        # the approach takes 1200 s, so the task must be rejected.
        far_driver = Driver("far", point_east(-5.0), point_east(12.0), 0.0, 10_000.0)
        instance = self._single_task_instance(far_driver)
        outcome = run_online(instance, NearestDispatcher())
        assert outcome.served_count == 0
        assert list(outcome.rejected_tasks) == [0]

    def test_driver_cannot_start_before_shift(self):
        # Close by, but her shift starts only after the pickup deadline.
        late_driver = Driver("late", point_east(5.0), point_east(12.0), 1200.0, 10_000.0)
        instance = self._single_task_instance(late_driver)
        outcome = run_online(instance, NearestDispatcher())
        assert outcome.served_count == 0

    def test_driver_must_reach_home_after_dropoff(self):
        # Serving the task would strand her: home is 10 km from the drop-off
        # but her shift ends right at the task's end deadline.
        tight_driver = Driver("tight", point_east(5.0), point_east(20.0), 0.0, 1800.0)
        instance = self._single_task_instance(tight_driver)
        outcome = run_online(instance, NearestDispatcher())
        assert outcome.served_count == 0

    def test_feasible_driver_serves_task(self):
        ok_driver = Driver("ok", point_east(3.0), point_east(12.0), 0.0, 10_000.0)
        instance = self._single_task_instance(ok_driver)
        outcome = run_online(instance, NearestDispatcher())
        assert outcome.served_count == 1
        assert outcome.record_for("ok").profit > 0.0


class TestOrderingAndConfig:
    def test_value_ordering_processes_expensive_tasks_first(self, random_instance):
        arrival = run_online(random_instance, MaxMarginDispatcher(), TaskOrdering.ARRIVAL)
        by_value = run_online(random_instance, MaxMarginDispatcher(), TaskOrdering.VALUE)
        # Both must be valid outcomes; the sorted variant is the offline
        # refinement the paper sketches, so it should not serve less revenue.
        assert by_value.total_revenue >= 0.0
        assert arrival.total_revenue >= 0.0

    def test_unpublishable_tasks_dropped_by_default(self, chain):
        task = chain.tasks[0]
        overpriced = task.with_price(task.price * 2.0, wtp=task.price)
        instance = chain.with_tasks([overpriced, chain.tasks[1]])
        outcome = run_online(instance, MaxMarginDispatcher())
        assert 0 not in outcome.served_tasks()

    def test_early_pickup_mode_can_only_help(self, random_instance):
        waiting = OnlineSimulator(
            random_instance,
            MaxMarginDispatcher(),
            SimulationConfig(wait_for_pickup_deadline=True),
        ).run()
        eager = OnlineSimulator(
            random_instance,
            MaxMarginDispatcher(),
            SimulationConfig(wait_for_pickup_deadline=False, use_recorded_duration=False),
        ).run()
        assert eager.served_count >= waiting.served_count


class TestOutcomeInvariants:
    @pytest.mark.parametrize("dispatcher_cls", [NearestDispatcher, MaxMarginDispatcher])
    def test_no_task_served_twice(self, random_instance, dispatcher_cls):
        outcome = run_online(random_instance, dispatcher_cls())
        served = [m for r in outcome.records for m in r.task_indices]
        assert len(served) == len(set(served))

    def test_served_plus_rejected_covers_all_tasks(self, random_instance):
        outcome = run_online(random_instance, NearestDispatcher())
        assert outcome.served_count + len(outcome.rejected_tasks) == random_instance.task_count

    def test_max_margin_drivers_never_lose_money(self, random_instance):
        outcome = run_online(random_instance, MaxMarginDispatcher())
        for record in outcome.records:
            if record.task_indices:
                assert record.profit > -1e-6

    def test_online_value_bounded_by_offline_optimum(self):
        """With the default trace-replay semantics every online schedule is a
        feasible offline assignment, so no online outcome can beat Z*."""
        instance = build_random_instance(task_count=20, driver_count=6, seed=29)
        optimum = exact_optimum(instance).optimum
        bound = lp_relaxation_bound(instance).upper_bound
        for dispatcher in (NearestDispatcher(), MaxMarginDispatcher()):
            outcome = run_online(instance, dispatcher)
            assert outcome.total_value <= optimum + 1e-6
            assert outcome.total_value <= bound + 1e-6

    def test_online_chains_are_feasible_offline_paths(self, random_instance):
        """Under default settings each driver's served sequence is a valid
        path in her task map."""
        outcome = run_online(random_instance, MaxMarginDispatcher())
        for record in outcome.records:
            task_map = random_instance.task_map(record.driver_id)
            assert task_map.is_feasible_path(record.task_indices)

    def test_summary_keys(self, random_instance):
        outcome = run_online(random_instance, NearestDispatcher())
        summary = outcome.summary()
        for key in (
            "total_value",
            "total_revenue",
            "served_count",
            "serve_rate",
            "revenue_per_driver",
            "tasks_per_driver",
            "active_drivers",
            "rejected_tasks",
        ):
            assert key in summary

    def test_record_lookup_raises_for_unknown_driver(self, chain):
        outcome = run_online(chain, NearestDispatcher())
        with pytest.raises(KeyError):
            outcome.record_for("ghost")


class TestWaitTimeTracking:
    def test_arrivals_align_with_served_tasks(self, random_instance):
        outcome = run_online(random_instance, NearestDispatcher())
        tasks = random_instance.tasks
        for record in outcome.records:
            assert len(record.arrival_times) == len(record.task_indices)
            for m, arrival_ts in zip(record.task_indices, record.arrival_times):
                # A driver can only be dispatched after the order publishes
                # and must arrive by the pickup deadline.
                assert arrival_ts >= tasks[m].publish_ts
                assert arrival_ts <= tasks[m].start_deadline_ts + 1e-9
        waits = outcome.wait_times_s()
        assert set(waits) == outcome.served_tasks()
        assert all(w >= 0.0 for w in waits.values())
        if waits:
            assert outcome.mean_wait_s == pytest.approx(
                sum(waits.values()) / len(waits)
            )
            assert outcome.total_wait_s == pytest.approx(sum(waits.values()))
        assert outcome.summary()["mean_wait_s"] == outcome.mean_wait_s

    def test_untracked_commit_keeps_alignment(self):
        """A commit without arrival_ts must not shift later arrivals onto
        the wrong task in the wait metrics."""
        import math

        from repro.online.state import DriverState

        driver = Driver(
            driver_id="d",
            source=GeoPoint(0.0, 0.0),
            destination=GeoPoint(0.0, 0.0),
            start_ts=0.0,
            end_ts=10_000.0,
        )
        state = DriverState.fresh(driver)
        state.assign(
            task_index=0, pickup_location=driver.source,
            dropoff_location=driver.source, dropoff_ts=100.0, profit_delta=0.0,
        )
        state.assign(
            task_index=1, pickup_location=driver.source,
            dropoff_location=driver.source, dropoff_ts=200.0, profit_delta=0.0,
            arrival_ts=150.0,
        )
        assert len(state.arrival_times) == len(state.served) == 2
        assert math.isnan(state.arrival_times[0])
        assert state.arrival_times[1] == 150.0
