"""Tests for the demand heatmap and idle-driver repositioning."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.geo import PORTO, GeoPoint, default_travel_model
from repro.market import Driver
from repro.online import (
    DemandHeatmap,
    HotspotRepositioning,
    MaxMarginDispatcher,
    NoRepositioning,
    OnlineSimulator,
    RepositioningMove,
    RepositioningPolicy,
    apply_repositioning,
)
from repro.online.state import DriverState
from repro.trace import generate_trace

from ..conftest import build_random_instance

DOWNTOWN = PORTO.center
EDGE = GeoPoint(PORTO.south + 0.005, PORTO.west + 0.005)


def make_heatmap(hot=DOWNTOWN, ts=9.0 * 3600, count=50):
    heatmap = DemandHeatmap(PORTO, rows=4, cols=4)
    heatmap.record(hot, ts, count=count)
    return heatmap


def make_idle_state(location=EDGE, start=0.0, end=12.0 * 3600) -> DriverState:
    driver = Driver("d", location, DOWNTOWN, start, end)
    state = DriverState.fresh(driver)
    state.location = location
    return state


class TestDemandHeatmap:
    def test_record_and_query(self):
        heatmap = make_heatmap()
        assert heatmap.demand_at(DOWNTOWN, 9.0 * 3600 + 120.0) == 50
        assert heatmap.demand_at(EDGE, 9.0 * 3600) == 0
        # Different hour -> different bucket.
        assert heatmap.demand_at(DOWNTOWN, 11.0 * 3600) == 0
        assert heatmap.total_demand() == 50

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            DemandHeatmap(PORTO, rows=0)
        heatmap = make_heatmap()
        with pytest.raises(ValueError):
            heatmap.record(DOWNTOWN, 0.0, count=-1)
        with pytest.raises(ValueError):
            heatmap.hottest_zones(0.0, top=0)

    def test_hottest_zones_ordering(self):
        heatmap = DemandHeatmap(PORTO, rows=4, cols=4)
        heatmap.record(DOWNTOWN, 3600.0, count=30)
        heatmap.record(EDGE, 3600.0, count=10)
        zones = heatmap.hottest_zones(3600.0, top=2)
        assert len(zones) == 2
        assert zones[0][1] == 30
        assert zones[1][1] == 10
        assert PORTO.contains(zones[0][0])

    def test_from_tasks_and_from_trips(self):
        trips = generate_trace(trip_count=100, seed=5)
        from_trips = DemandHeatmap.from_trips(trips, PORTO)
        assert from_trips.total_demand() == 100
        instance = build_random_instance(task_count=30, driver_count=3, seed=6)
        from_tasks = DemandHeatmap.from_tasks(instance.tasks, PORTO)
        assert from_tasks.total_demand() == 30


class TestHotspotPolicy:
    def test_invalid_parameters(self):
        heatmap = make_heatmap()
        model = default_travel_model()
        with pytest.raises(ValueError):
            HotspotRepositioning(heatmap, model, idle_threshold_s=-1.0)
        with pytest.raises(ValueError):
            HotspotRepositioning(heatmap, model, max_drive_km=0.0)
        with pytest.raises(ValueError):
            HotspotRepositioning(heatmap, model, improvement_factor=0.5)

    def test_suggests_move_towards_hotspot(self):
        heatmap = make_heatmap(ts=9.0 * 3600)
        policy = HotspotRepositioning(
            heatmap, default_travel_model(), idle_threshold_s=300.0, max_drive_km=50.0
        )
        state = make_idle_state()
        move = policy.suggest(state, now_ts=9.0 * 3600)
        assert move is not None
        # The target is in the hot zone, i.e. closer to downtown than before.
        assert move.target.haversine_km(DOWNTOWN) < state.location.haversine_km(DOWNTOWN)

    def test_busy_or_fresh_drivers_stay(self):
        heatmap = make_heatmap(ts=9.0 * 3600)
        policy = HotspotRepositioning(heatmap, default_travel_model(), idle_threshold_s=600.0)
        busy = make_idle_state()
        busy.locked = True
        assert policy.suggest(busy, 9.0 * 3600) is None
        fresh = make_idle_state(start=9.0 * 3600 - 60.0)
        assert policy.suggest(fresh, 9.0 * 3600) is None

    def test_never_strands_the_driver(self):
        heatmap = make_heatmap(ts=9.0 * 3600)
        policy = HotspotRepositioning(
            heatmap, default_travel_model(), idle_threshold_s=0.0, max_drive_km=50.0
        )
        # Shift ends in two minutes: no repositioning drive can be justified.
        state = make_idle_state(end=9.0 * 3600 + 120.0)
        assert policy.suggest(state, 9.0 * 3600) is None

    def test_respects_max_drive_distance(self):
        heatmap = make_heatmap(ts=9.0 * 3600)
        policy = HotspotRepositioning(
            heatmap, default_travel_model(), idle_threshold_s=0.0, max_drive_km=1.0
        )
        # The edge of the box is much more than 1 km from downtown.
        assert policy.suggest(make_idle_state(), 9.0 * 3600) is None

    def test_no_repositioning_baseline(self):
        assert NoRepositioning().suggest(make_idle_state(), 1e6) is None


class TestBatchedSuggestions:
    """suggest_batch is the vectorised twin of the scalar suggest loop: same
    decisions for every driver, computed with two cross_km calls."""

    def make_fleet(self, count=40, seed=5):
        import random

        rng = random.Random(seed)
        states = []
        for i in range(count):
            lat = rng.uniform(PORTO.south, PORTO.north)
            lon = rng.uniform(PORTO.west, PORTO.east)
            home = GeoPoint(
                rng.uniform(PORTO.south, PORTO.north), rng.uniform(PORTO.west, PORTO.east)
            )
            start = rng.choice([0.0, 8.0 * 3600, 9.0 * 3600 - 60.0])
            end = rng.choice([9.5 * 3600, 12.0 * 3600, 18.0 * 3600])
            driver = Driver(f"d{i}", GeoPoint(lat, lon), home, start, end)
            state = DriverState.fresh(driver)
            state.locked = rng.random() < 0.2
            states.append(state)
        return states

    def test_batch_matches_scalar_reference(self):
        heatmap = make_heatmap(ts=9.0 * 3600)
        heatmap.record(EDGE, 9.0 * 3600, count=20)
        policy = HotspotRepositioning(
            heatmap, default_travel_model(), idle_threshold_s=300.0, max_drive_km=30.0
        )
        states = self.make_fleet()
        now_ts = 9.0 * 3600
        batched = policy.suggest_batch(states, now_ts)
        scalar = [policy.suggest(state, now_ts) for state in states]
        assert batched == scalar
        assert any(move is not None for move in batched)  # the case is non-trivial

    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        fleet_size=st.integers(min_value=1, max_value=25),
        hot_zones=st.lists(
            st.tuples(
                st.floats(min_value=0.05, max_value=0.95),
                st.floats(min_value=0.05, max_value=0.95),
                st.integers(min_value=1, max_value=60),
            ),
            min_size=0,
            max_size=4,
        ),
        now_hour=st.floats(min_value=1.0, max_value=23.0),
        max_drive_km=st.floats(min_value=0.5, max_value=40.0),
    )
    def test_batch_equals_scalar_on_random_fleets(
        self, seed, fleet_size, hot_zones, now_hour, max_drive_km
    ):
        """suggest_batch == [suggest(s) for s in states] for arbitrary fleets,
        demand fields and policy knobs (the vectorised twin never diverges)."""
        heatmap = DemandHeatmap(PORTO, rows=4, cols=4)
        now_ts = now_hour * 3600.0
        for frac_lat, frac_lon, count in hot_zones:
            hot = GeoPoint(
                PORTO.south + frac_lat * (PORTO.north - PORTO.south),
                PORTO.west + frac_lon * (PORTO.east - PORTO.west),
            )
            heatmap.record(hot, now_ts, count=count)
        policy = HotspotRepositioning(
            heatmap,
            default_travel_model(),
            idle_threshold_s=300.0,
            max_drive_km=max_drive_km,
        )
        states = self.make_fleet(count=fleet_size, seed=seed)
        batched = policy.suggest_batch(states, now_ts)
        assert batched == [policy.suggest(state, now_ts) for state in states]

    def test_base_class_default_walks_scalar_suggest(self):
        class EveryoneDowntown(RepositioningPolicy):
            def suggest(self, state, now_ts):
                return RepositioningMove(target=DOWNTOWN, depart_ts=now_ts)

        states = [make_idle_state(), make_idle_state()]
        moves = EveryoneDowntown().suggest_batch(states, 0.0)
        assert len(moves) == 2
        assert all(m.target == DOWNTOWN for m in moves)

    def test_scalar_fallback_without_batch_estimator(self):
        class ScalarOnlyModel:
            """Duck-typed travel model: no .estimator attribute."""

            def distance_km(self, a, b):
                return a.haversine_km(b)

            def time_for_distance_s(self, km):
                return km / 30.0 * 3600.0

            def travel_time_s(self, a, b):
                return self.time_for_distance_s(self.distance_km(a, b))

            def cost_for_distance(self, km):
                return km * 0.12

        heatmap = make_heatmap(ts=9.0 * 3600)
        policy = HotspotRepositioning(
            heatmap, ScalarOnlyModel(), idle_threshold_s=0.0, max_drive_km=50.0
        )
        state = make_idle_state()
        batched = policy.suggest_batch([state], 9.0 * 3600)
        assert batched == [policy.suggest(state, 9.0 * 3600)]
        assert batched[0] is not None


class TestApplyRepositioning:
    def test_moves_update_state_and_charge_cost(self):
        heatmap = make_heatmap(ts=9.0 * 3600)
        model = default_travel_model()
        policy = HotspotRepositioning(heatmap, model, idle_threshold_s=0.0, max_drive_km=50.0)
        state = make_idle_state()
        before_location = state.location
        moved = apply_repositioning(policy, [state], 9.0 * 3600, model)
        assert moved == 1
        assert state.location != before_location
        assert state.running_profit < 0.0  # the empty drive was paid for
        assert state.free_at > 9.0 * 3600

    def test_noop_policy_changes_nothing(self):
        state = make_idle_state()
        moved = apply_repositioning(NoRepositioning(), [state], 1e6, default_travel_model())
        assert moved == 0
        assert state.running_profit == 0.0


class TestSimulatorIntegration:
    def test_simulation_with_repositioning_is_consistent(self):
        instance = build_random_instance(task_count=40, driver_count=8, seed=97)
        heatmap = DemandHeatmap.from_tasks(instance.tasks, PORTO)
        policy = HotspotRepositioning(
            heatmap,
            instance.cost_model.travel_model,
            idle_threshold_s=300.0,
            max_drive_km=8.0,
            improvement_factor=1.0,
        )
        plain = OnlineSimulator(instance, MaxMarginDispatcher()).run()
        repositioned = OnlineSimulator(
            instance, MaxMarginDispatcher(), repositioning=policy
        ).run()
        # Same stream, same invariants.
        served = [m for r in repositioned.records for m in r.task_indices]
        assert len(served) == len(set(served))
        assert repositioned.served_count + len(repositioned.rejected_tasks) == instance.task_count
        # Repositioning changes behaviour but stays in a sane range.
        assert repositioned.total_value <= plain.total_value * 1.5 + 10.0
