"""Forecaster test battery (repro.online.forecast).

Pins the properties the rolling-horizon dispatcher depends on:

* EWMA == oracle on stationary demand (same counts every window);
* forecasts are a deterministic function of (spec, seed) — compiling and
  replaying a scenario twice yields bit-identical forecast sequences;
* the EWMA never emits negative per-zone mass (hypothesis-driven);
* the oracle reproduces the compiled timeline's true per-slot counts.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.geo import PORTO, GeoPoint
from repro.market.task import Task
from repro.online import EwmaDemandForecaster, OracleDemandForecaster, ZoneGrid
from repro.online.forecast import publish_slot_of
from repro.scenarios import compile_scenario, get_scenario

WINDOW_S = 60.0

GRID = ZoneGrid(PORTO, rows=4, cols=4)


def make_task(task_id, source, publish_ts=0.0):
    return Task(
        task_id=task_id,
        publish_ts=publish_ts,
        source=source,
        destination=PORTO.center,
        start_deadline_ts=publish_ts + 600.0,
        end_deadline_ts=publish_ts + 1800.0,
        price=5.0,
    )


def zone_point(zone: int) -> GeoPoint:
    return GRID.centers[zone]


class TestZoneGrid:
    def test_invalid_shape_rejected(self):
        with pytest.raises(ValueError):
            ZoneGrid(PORTO, rows=0)

    def test_zone_of_centers_round_trips(self):
        for zone, center in enumerate(GRID.centers):
            assert GRID.zone_of(center) == zone

    def test_counts_of(self):
        tasks = [make_task("a", zone_point(3)), make_task("b", zone_point(3)),
                 make_task("c", zone_point(7))]
        counts = GRID.counts_of(tasks)
        assert counts[3] == 2.0
        assert counts[7] == 1.0
        assert counts.sum() == 3.0

    def test_from_points(self):
        assert ZoneGrid.from_points([], 4, 4) is None
        grid = ZoneGrid.from_points([PORTO.center], 4, 4)
        assert grid is not None
        assert grid.zone_count == 16

    def test_out_of_box_points_clamp(self):
        far = GeoPoint(PORTO.north + 1.0, PORTO.east + 1.0)
        assert 0 <= GRID.zone_of(far) < GRID.zone_count


class TestPublishSlot:
    def test_slot_edges(self):
        assert publish_slot_of(0.0, 0.0, WINDOW_S) == 0
        assert publish_slot_of(59.999, 0.0, WINDOW_S) == 0
        assert publish_slot_of(60.0, 0.0, WINDOW_S) == 1
        # Clamped below the first publish (defensive; the stream never
        # produces one).
        assert publish_slot_of(-5.0, 0.0, WINDOW_S) == 0


class TestEwma:
    def test_alpha_validated(self):
        with pytest.raises(ValueError):
            EwmaDemandForecaster(GRID, alpha=0.0)
        with pytest.raises(ValueError):
            EwmaDemandForecaster(GRID, alpha=1.5)

    def test_predict_before_any_observation_is_zero(self):
        forecaster = EwmaDemandForecaster(GRID)
        assert not forecaster.predict(0).any()

    def test_stationary_demand_equals_oracle(self):
        """Identical counts every window: EWMA == oracle from slot 0 on."""
        window_tasks = [
            make_task("a", zone_point(1)),
            make_task("b", zone_point(1)),
            make_task("c", zone_point(10)),
        ]
        all_tasks = []
        for slot in range(8):
            all_tasks.extend(
                make_task(f"{t.task_id}{slot}", t.source, publish_ts=slot * WINDOW_S)
                for t in window_tasks
            )
        oracle = OracleDemandForecaster(GRID, all_tasks, WINDOW_S)
        ewma = EwmaDemandForecaster(GRID, alpha=0.35)
        for slot in range(8):
            published = [t for t in all_tasks
                         if publish_slot_of(t.publish_ts, 0.0, WINDOW_S) == slot]
            ewma.observe(slot, published)
            for future in range(slot + 1, 8):
                np.testing.assert_array_equal(
                    ewma.predict(future), oracle.predict(future)
                )

    def test_skipped_slots_decay_like_zero_observations(self):
        """Observing slots (0, 3) equals observing (0, 1, 2, 3) with empty
        middles — the watermark-skip contract."""
        tasks0 = [make_task("a", zone_point(5))] * 4
        tasks3 = [make_task("b", zone_point(5))] * 2
        skipping = EwmaDemandForecaster(GRID, alpha=0.4)
        skipping.observe(0, tasks0)
        skipping.observe(3, tasks3)
        dense = EwmaDemandForecaster(GRID, alpha=0.4)
        dense.observe(0, tasks0)
        dense.observe(1, [])
        dense.observe(2, [])
        dense.observe(3, tasks3)
        np.testing.assert_allclose(skipping.predict(4), dense.predict(4), rtol=1e-12)

    def test_prediction_is_slot_independent(self):
        """The EWMA forecasts its current state for *every* future slot, so
        horizon length never changes forecaster behaviour."""
        forecaster = EwmaDemandForecaster(GRID)
        forecaster.observe(0, [make_task("a", zone_point(2))])
        np.testing.assert_array_equal(forecaster.predict(1), forecaster.predict(99))

    @settings(deadline=None, suppress_health_check=[HealthCheck.too_slow])
    @given(
        alpha=st.floats(min_value=0.01, max_value=1.0),
        windows=st.lists(
            st.lists(st.integers(min_value=0, max_value=15), max_size=12),
            min_size=1,
            max_size=10,
        ),
        gaps=st.lists(st.integers(min_value=1, max_value=4), min_size=10, max_size=10),
    )
    def test_never_negative(self, alpha, windows, gaps):
        """No observation sequence can drive any per-zone forecast negative."""
        forecaster = EwmaDemandForecaster(GRID, alpha=alpha)
        slot = 0
        for window, gap in zip(windows, gaps):
            tasks = [make_task(f"t{slot}-{i}", zone_point(z))
                     for i, z in enumerate(window)]
            forecaster.observe(slot, tasks)
            prediction = forecaster.predict(slot + 1)
            assert (prediction >= 0.0).all()
            assert np.isfinite(prediction).all()
            slot += gap


class TestOracle:
    def test_window_s_validated(self):
        with pytest.raises(ValueError):
            OracleDemandForecaster(GRID, [], window_s=0.0)

    def test_empty_task_table_predicts_zero(self):
        oracle = OracleDemandForecaster(GRID, [], WINDOW_S)
        assert not oracle.predict(0).any()

    def test_true_counts_per_slot(self):
        tasks = [
            make_task("a", zone_point(0), publish_ts=10.0),
            make_task("b", zone_point(0), publish_ts=30.0),
            make_task("c", zone_point(9), publish_ts=70.0),
        ]
        oracle = OracleDemandForecaster(GRID, tasks, WINDOW_S)
        assert oracle.predict(0)[0] == 2.0
        assert oracle.predict(1)[9] == 1.0
        assert not oracle.predict(2).any()

    def test_observe_is_a_noop(self):
        tasks = [make_task("a", zone_point(0), publish_ts=0.0)]
        oracle = OracleDemandForecaster(GRID, tasks, WINDOW_S)
        before = oracle.predict(0).copy()
        oracle.observe(0, [make_task("x", zone_point(15), publish_ts=0.0)] * 50)
        np.testing.assert_array_equal(oracle.predict(0), before)


class TestDeterminism:
    def test_forecast_deterministic_from_spec_and_seed(self):
        """Compiling the same (spec, seed) twice and replaying the arrival
        batches yields bit-identical forecast sequences."""
        spec = get_scenario("morning-surge").with_scale(120, 12)

        def forecast_trace(seed):
            compiled = compile_scenario(spec.with_seed(seed))
            drivers = compiled.instance.drivers
            points = [d.source for d in drivers] + [d.destination for d in drivers]
            grid = ZoneGrid.from_points(points, 4, 4)
            forecaster = EwmaDemandForecaster(grid)
            tasks = compiled.instance.tasks
            first_publish = min(t.publish_ts for t in tasks if t.is_publishable)
            trace = []
            for slot in range(10):
                published = [
                    t for t in tasks if t.is_publishable
                    and publish_slot_of(t.publish_ts, first_publish, spec.window_s) == slot
                ]
                forecaster.observe(slot, published)
                trace.append(forecaster.predict(slot + 1).tobytes())
            return trace

        assert forecast_trace(7) == forecast_trace(7)
        assert forecast_trace(7) != forecast_trace(8)
