"""Tests for the online dispatch rules."""

import pytest

from repro.geo import GeoPoint
from repro.market import Driver, Task
from repro.online import MaxMarginDispatcher, NearestDispatcher, RandomDispatcher
from repro.online.state import Candidate, DriverState

A = GeoPoint(41.15, -8.61)


def make_candidate(driver_id: str, arrival: float, margin: float) -> Candidate:
    driver = Driver(driver_id, A, A.offset_km(0.0, 1.0), 0.0, 10_000.0)
    return Candidate(
        state=DriverState.fresh(driver),
        arrival_ts=arrival,
        dropoff_ts=arrival + 500.0,
        approach_cost=0.1,
        marginal_value=margin,
    )


TASK = Task(
    task_id="m",
    publish_ts=0.0,
    source=A,
    destination=A.offset_km(0.0, 2.0),
    start_deadline_ts=600.0,
    end_deadline_ts=1500.0,
    price=4.0,
)


class TestNearestDispatcher:
    def test_picks_fastest_arrival(self):
        dispatcher = NearestDispatcher(seed=1)
        candidates = [
            make_candidate("slow", arrival=500.0, margin=9.0),
            make_candidate("fast", arrival=100.0, margin=0.5),
        ]
        assert dispatcher.select(TASK, candidates).driver_id == "fast"

    def test_empty_candidate_set_rejects(self):
        assert NearestDispatcher().select(TASK, []) is None

    def test_tie_breaking_is_random_but_among_fastest(self):
        dispatcher = NearestDispatcher(seed=3)
        candidates = [
            make_candidate("a", arrival=100.0, margin=1.0),
            make_candidate("b", arrival=100.0, margin=2.0),
            make_candidate("c", arrival=400.0, margin=3.0),
        ]
        chosen = {dispatcher.select(TASK, candidates).driver_id for _ in range(30)}
        assert chosen <= {"a", "b"}
        assert len(chosen) == 2  # both fastest drivers get picked eventually

    def test_name(self):
        assert NearestDispatcher().name == "nearest"


class TestMaxMarginDispatcher:
    def test_picks_highest_margin(self):
        dispatcher = MaxMarginDispatcher()
        candidates = [
            make_candidate("poor", arrival=100.0, margin=0.5),
            make_candidate("rich", arrival=500.0, margin=3.5),
        ]
        assert dispatcher.select(TASK, candidates).driver_id == "rich"

    def test_rejects_when_all_margins_negative(self):
        dispatcher = MaxMarginDispatcher()
        candidates = [make_candidate("a", 100.0, -1.0), make_candidate("b", 200.0, -0.2)]
        assert dispatcher.select(TASK, candidates) is None

    def test_literal_mode_accepts_negative_margins(self):
        dispatcher = MaxMarginDispatcher(require_positive_margin=False)
        candidates = [make_candidate("a", 100.0, -1.0), make_candidate("b", 200.0, -0.2)]
        assert dispatcher.select(TASK, candidates).driver_id == "b"

    def test_empty_candidate_set_rejects(self):
        assert MaxMarginDispatcher().select(TASK, []) is None

    def test_name(self):
        assert MaxMarginDispatcher().name == "maxMargin"


class TestRandomDispatcher:
    def test_picks_some_candidate(self):
        dispatcher = RandomDispatcher(seed=7)
        candidates = [make_candidate("a", 1.0, 1.0), make_candidate("b", 2.0, 2.0)]
        seen = {dispatcher.select(TASK, candidates).driver_id for _ in range(40)}
        assert seen == {"a", "b"}

    def test_empty_candidate_set_rejects(self):
        assert RandomDispatcher().select(TASK, []) is None

    def test_deterministic_given_seed(self):
        c = [make_candidate("a", 1.0, 1.0), make_candidate("b", 2.0, 2.0)]
        first = [RandomDispatcher(seed=5).select(TASK, c).driver_id for _ in range(5)]
        second = [RandomDispatcher(seed=5).select(TASK, c).driver_id for _ in range(5)]
        assert first == second
