"""Tests for the batched (rolling-horizon) dispatcher."""

import pytest

from repro.market import StreamingMarketInstance
from repro.offline import exact_optimum, greedy_assignment
from repro.online import (
    BatchConfig,
    BatchedSimulator,
    MaxMarginDispatcher,
    run_batched,
    run_batched_stream,
    run_online,
    window_batches,
)

from ..conftest import build_chain_instance, build_random_instance


@pytest.fixture(scope="module")
def chain():
    return build_chain_instance()


@pytest.fixture(scope="module")
def random_instance():
    return build_random_instance(task_count=40, driver_count=10, seed=81)


class TestBatchConfig:
    def test_invalid_window(self):
        with pytest.raises(ValueError):
            BatchConfig(window_s=0.0)

    def test_defaults(self):
        cfg = BatchConfig()
        assert cfg.window_s == 60.0
        assert cfg.require_positive_margin
        assert cfg.allow_retries


class TestBatchedOnChainInstance:
    def test_serves_both_tasks(self, chain):
        outcome = run_batched(chain, window_s=120.0)
        assert outcome.record_for("chainer").task_indices == (0, 1)
        assert outcome.total_value == pytest.approx(10.0, rel=0.02)
        assert outcome.dispatcher_name == "batched"

    def test_overly_wide_window_misses_deadlines(self, chain):
        # Batching is a latency/quality trade-off: with a window far longer
        # than the publish lead, the batch is dispatched only after the pickup
        # deadlines have passed and the orders are lost.
        outcome = run_batched(chain, window_s=10_000.0)
        assert outcome.served_count == 0
        assert set(outcome.rejected_tasks) == {0, 1}

    def test_window_matched_to_publish_lead_serves_everything(self, chain):
        # Publish lead in the chain instance is 600 s; a 300 s window keeps
        # every dispatch ahead of its pickup deadline.
        outcome = run_batched(chain, window_s=300.0)
        assert outcome.served_count == 2


class TestBatchedInvariants:
    @pytest.mark.parametrize("window_s", [30.0, 120.0, 600.0])
    def test_no_task_served_twice(self, random_instance, window_s):
        outcome = run_batched(random_instance, window_s=window_s)
        served = [m for r in outcome.records for m in r.task_indices]
        assert len(served) == len(set(served))

    def test_served_plus_rejected_cover_all_tasks(self, random_instance):
        outcome = run_batched(random_instance, window_s=60.0)
        assert outcome.served_count + len(outcome.rejected_tasks) == random_instance.task_count

    def test_each_chain_is_a_feasible_offline_path(self, random_instance):
        outcome = run_batched(random_instance, window_s=60.0)
        for record in outcome.records:
            task_map = random_instance.task_map(record.driver_id)
            assert task_map.is_feasible_path(record.task_indices)

    def test_bounded_by_exact_optimum(self):
        instance = build_random_instance(task_count=18, driver_count=5, seed=83)
        optimum = exact_optimum(instance).optimum
        outcome = run_batched(instance, window_s=90.0)
        assert outcome.total_value <= optimum + 1e-6

    def test_drivers_never_lose_money(self, random_instance):
        outcome = run_batched(random_instance, window_s=60.0)
        for record in outcome.records:
            if record.task_indices:
                assert record.profit > -1e-6

    def test_no_retries_rejects_leftovers(self, random_instance):
        with_retries = BatchedSimulator(random_instance, BatchConfig(window_s=30.0)).run()
        without = BatchedSimulator(
            random_instance, BatchConfig(window_s=30.0, allow_retries=False)
        ).run()
        assert without.served_count <= with_retries.served_count

    def test_deterministic(self, random_instance):
        a = run_batched(random_instance, window_s=60.0)
        b = run_batched(random_instance, window_s=60.0)
        assert a.assignment() == b.assignment()


class TestWindowSpatialPrefilter:
    """The union-of-reach grid query is superset-safe: enabling it must never
    change a single assignment or profit, only the matrix width."""

    @pytest.mark.parametrize("window_s", [30.0, 120.0])
    def test_index_on_off_outcomes_identical(self, window_s):
        # Enough drivers to clear the kernel's min_drivers_for_index bar.
        instance = build_random_instance(task_count=80, driver_count=30, seed=21)
        with_index = BatchedSimulator(
            instance, BatchConfig(window_s=window_s, use_spatial_index=True)
        ).run()
        without = BatchedSimulator(
            instance, BatchConfig(window_s=window_s, use_spatial_index=False)
        ).run()
        assert with_index.assignment() == without.assignment()
        assert [r.profit for r in with_index.records] == [r.profit for r in without.records]
        assert with_index.rejected_tasks == without.rejected_tasks

    def test_kernel_grid_is_engaged(self):
        instance = build_random_instance(task_count=40, driver_count=30, seed=21)
        simulator = BatchedSimulator(instance, BatchConfig(use_spatial_index=True))
        simulator.run()
        assert simulator._kernel.uses_spatial_index


class TestStreamingConsumption:
    """run_stream over a StreamingMarketInstance reproduces run() exactly
    when fed the same windows (task indices may differ, task ids may not)."""

    @staticmethod
    def by_task_ids(outcome, instance):
        return {
            record.driver_id: tuple(
                instance.tasks[m].task_id for m in record.task_indices
            )
            for record in outcome.records
            if record.task_indices
        }

    @pytest.mark.parametrize("window_s", [30.0, 90.0])
    def test_stream_matches_replay(self, random_instance, window_s):
        replay = BatchedSimulator(random_instance, BatchConfig(window_s=window_s)).run()
        stream_instance = StreamingMarketInstance(
            random_instance.drivers, random_instance.cost_model
        )
        outcome = run_batched_stream(
            stream_instance,
            window_batches(random_instance.tasks, window_s),
            window_s=window_s,
        )
        assert self.by_task_ids(outcome, stream_instance) == self.by_task_ids(
            replay, random_instance
        )
        assert outcome.total_value == replay.total_value
        rejected_stream = {stream_instance.tasks[m].task_id for m in outcome.rejected_tasks}
        rejected_replay = {random_instance.tasks[m].task_id for m in replay.rejected_tasks}
        assert rejected_stream == rejected_replay

    def test_one_task_per_batch_matches_replay(self):
        """Watermark windowing: parity must not depend on window-aligned
        batching — the natural live feed is one order per batch."""
        instance = build_random_instance(task_count=60, driver_count=3, seed=10)
        replay = BatchedSimulator(instance, BatchConfig(window_s=300.0)).run()
        ordered = sorted(instance.tasks, key=lambda t: t.publish_ts)
        stream_instance = StreamingMarketInstance(instance.drivers, instance.cost_model)
        outcome = run_batched_stream(
            stream_instance, [[task] for task in ordered], window_s=300.0
        )
        assert self.by_task_ids(outcome, stream_instance) == self.by_task_ids(
            replay, instance
        )
        assert outcome.total_value == replay.total_value

    def test_out_of_order_stream_rejected(self, random_instance):
        ordered = sorted(random_instance.tasks, key=lambda t: t.publish_ts)
        stream_instance = StreamingMarketInstance(
            random_instance.drivers, random_instance.cost_model
        )
        simulator = BatchedSimulator(stream_instance, BatchConfig(window_s=60.0))
        with pytest.raises(ValueError):
            # Feed the latest order first, then one from a much earlier window.
            simulator.run_stream([[ordered[-1]], [ordered[0]]])

    def test_run_stream_requires_streaming_instance(self, random_instance):
        simulator = BatchedSimulator(random_instance)
        with pytest.raises(TypeError):
            simulator.run_stream([list(random_instance.tasks)])

    def test_window_batches_grouping(self, random_instance):
        batches = window_batches(random_instance.tasks, 60.0)
        flattened = [t for batch in batches for t in batch]
        assert len(flattened) == sum(1 for t in random_instance.tasks if t.is_publishable)
        publishes = [t.publish_ts for t in flattened]
        assert publishes == sorted(publishes)
        with pytest.raises(ValueError):
            window_batches(random_instance.tasks, 0.0)

    def test_stream_schedule_carries_every_task(self, random_instance):
        from repro.online.batch import stream_schedule

        batches = stream_schedule(random_instance.tasks, 60.0)
        flattened = [t for batch in batches for t in batch]
        assert len(flattened) == random_instance.task_count
        publishes = [t.publish_ts for t in flattened]
        assert publishes == sorted(publishes)
        # The publishable subsequence is exactly the dispatch schedule.
        publishable = [t for t in flattened if t.is_publishable]
        assert publishable == [
            t for batch in window_batches(random_instance.tasks, 60.0) for t in batch
        ]
        with pytest.raises(ValueError):
            stream_schedule(random_instance.tasks, 0.0)

    def test_incremental_api_requires_stream_begin(self, random_instance):
        stream_instance = StreamingMarketInstance(
            random_instance.drivers, random_instance.cost_model
        )
        simulator = BatchedSimulator(stream_instance, BatchConfig(window_s=60.0))
        with pytest.raises(RuntimeError):
            simulator.stream_feed(list(random_instance.tasks))
        with pytest.raises(RuntimeError):
            simulator.stream_end()
        simulator.stream_begin()
        simulator.stream_feed(sorted(random_instance.tasks, key=lambda t: t.publish_ts))
        simulator.stream_end()
        with pytest.raises(RuntimeError):  # stream is over
            simulator.stream_feed([])


class TestBatchedVsPerOrder:
    def test_batching_competitive_with_max_margin(self, random_instance):
        """Pooling a window of orders should not be dramatically worse than
        the per-order maxMargin rule, and usually helps."""
        per_order = run_online(random_instance, MaxMarginDispatcher())
        batched = run_batched(random_instance, window_s=120.0)
        assert batched.total_value >= 0.6 * per_order.total_value

    def test_tiny_windows_degenerate_to_per_order_behaviour(self, random_instance):
        tiny = run_batched(random_instance, window_s=1.0)
        assert tiny.served_count > 0
