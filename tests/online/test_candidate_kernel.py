"""Equivalence tests for the vectorised candidate kernel.

The spatial-index + vectorisation refactor must be *behaviour preserving*:
on the same seeded instance, the per-order and batched simulators have to
produce bit-for-bit identical dispatch decisions whether candidates come
from the scalar reference loop, the vectorised kernel, or the vectorised
kernel behind the grid prefilter.
"""

from __future__ import annotations

import pytest

from repro.online import (
    BatchConfig,
    BatchedSimulator,
    CandidateKernel,
    MaxMarginDispatcher,
    NearestDispatcher,
    OnlineSimulator,
    RandomDispatcher,
    SimulationConfig,
)
from repro.online.state import DriverState

from ..conftest import build_random_instance


@pytest.fixture(scope="module")
def instance():
    # Enough drivers to clear the kernel's min-fleet threshold, so the grid
    # prefilter is actually exercised (not just configured).
    return build_random_instance(task_count=90, driver_count=30, seed=13)


def outcome_signature(outcome):
    return (
        tuple(record.task_indices for record in outcome.records),
        outcome.rejected_tasks,
    )


def assert_profits_match(a, b):
    for ra, rb in zip(a.records, b.records):
        assert ra.driver_id == rb.driver_id
        assert ra.profit == pytest.approx(rb.profit, abs=1e-9)


class TestKernelCandidateEquivalence:
    def test_vectorized_candidates_match_scalar_reference(self, instance):
        states = [DriverState.fresh(d) for d in instance.drivers]
        vectorized = CandidateKernel(instance, states)
        exhaustive = CandidateKernel(instance, states, spatial_index=False)
        assert vectorized.uses_spatial_index
        assert not exhaustive.uses_spatial_index
        checked_any = False
        for task_index, task in enumerate(instance.tasks):
            now_ts = task.publish_ts
            fast = vectorized.candidates_for(task_index, task, now_ts)
            full = exhaustive.candidates_for(task_index, task, now_ts)
            reference = vectorized.candidates_for_scalar(task_index, task, now_ts)
            assert [c.driver_id for c in fast] == [c.driver_id for c in reference]
            assert [c.driver_id for c in full] == [c.driver_id for c in reference]
            for got, want in zip(fast, reference):
                assert got.arrival_ts == pytest.approx(want.arrival_ts, abs=1e-9)
                assert got.dropoff_ts == pytest.approx(want.dropoff_ts, abs=1e-9)
                assert got.approach_cost == pytest.approx(want.approach_cost, abs=1e-9)
                assert got.marginal_value == pytest.approx(want.marginal_value, abs=1e-9)
            checked_any = checked_any or bool(reference)
        assert checked_any, "instance produced no candidates at all"

    def test_index_disabled_outside_city_scale_regime(self, instance):
        # The prune-radius margins are only provably supersets for city-scale
        # mid-latitude boxes; a polar/continental instance must fall back to
        # the exhaustive scan even with a large fleet.
        from repro.geo import GeoPoint
        from repro.market import Driver, MarketInstance

        polar_drivers = [
            Driver(
                driver_id=f"p{n}",
                source=GeoPoint(80.0 + 0.01 * n, -170.0 + 12.0 * n),
                destination=GeoPoint(80.5, -170.0 + 12.0 * n),
                start_ts=0.0,
                end_ts=36000.0,
            )
            for n in range(28)
        ]
        polar = MarketInstance.create(
            drivers=polar_drivers, tasks=instance.tasks, cost_model=instance.cost_model
        )
        kernel = CandidateKernel(polar, [DriverState.fresh(d) for d in polar_drivers])
        assert not kernel.uses_spatial_index

    def test_sync_tracks_moved_drivers(self, instance):
        states = [DriverState.fresh(d) for d in instance.drivers]
        kernel = CandidateKernel(instance, states)
        task = instance.tasks[0]
        moved = states[0]
        moved.location = task.source
        moved.free_at = task.publish_ts
        kernel.sync(moved)
        reference = kernel.candidates_for_scalar(0, task, task.publish_ts)
        fast = kernel.candidates_for(0, task, task.publish_ts)
        assert [c.driver_id for c in fast] == [c.driver_id for c in reference]


class TestSimulatorOutcomeRegression:
    """Whole-simulation replays: scalar loop vs vectorised kernel vs grid."""

    @pytest.mark.parametrize(
        "make_dispatcher",
        [
            lambda: MaxMarginDispatcher(),
            lambda: NearestDispatcher(seed=5),
            lambda: RandomDispatcher(seed=5),
        ],
        ids=["maxMargin", "nearest", "random"],
    )
    def test_per_order_simulator_identical_outcomes(self, instance, make_dispatcher):
        configs = [
            SimulationConfig(use_vectorized_kernel=False, use_spatial_index=False),
            SimulationConfig(use_vectorized_kernel=True, use_spatial_index=False),
            SimulationConfig(use_vectorized_kernel=True, use_spatial_index=True),
        ]
        outcomes = [
            OnlineSimulator(instance, make_dispatcher(), config).run()
            for config in configs
        ]
        assert outcomes[0].served_count > 0
        baseline = outcome_signature(outcomes[0])
        for outcome in outcomes[1:]:
            assert outcome_signature(outcome) == baseline
            assert_profits_match(outcome, outcomes[0])

    def test_batched_simulator_identical_outcomes(self, instance):
        scalar = BatchedSimulator(
            instance, BatchConfig(window_s=45.0, use_vectorized_kernel=False)
        ).run()
        vectorized = BatchedSimulator(
            instance, BatchConfig(window_s=45.0, use_vectorized_kernel=True)
        ).run()
        assert scalar.served_count > 0
        assert outcome_signature(vectorized) == outcome_signature(scalar)
        assert_profits_match(vectorized, scalar)

    def test_chain_instance_still_chains(self, chain_instance):
        # A tiny fleet disables the spatial index; the vectorised kernel must
        # still reproduce the handcrafted chain assignment exactly.
        outcome = OnlineSimulator(chain_instance, MaxMarginDispatcher()).run()
        by_driver = {r.driver_id: r.task_indices for r in outcome.records}
        assert by_driver["chainer"] == (0, 1)
        assert by_driver["stranded"] == ()
