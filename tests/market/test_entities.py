"""Tests for the Driver and Task entities."""

import pytest

from repro.geo import GeoPoint
from repro.market import Driver, Task

A = GeoPoint(41.15, -8.61)
B = A.offset_km(0.0, 5.0)


class TestDriver:
    def test_basic_properties(self):
        driver = Driver("d1", A, B, start_ts=100.0, end_ts=4000.0)
        assert driver.working_window == (100.0, 4000.0)
        assert driver.working_duration_s == 3900.0
        assert not driver.is_home_work_home

    def test_home_work_home_detection(self):
        driver = Driver("d1", A, A, start_ts=0.0, end_ts=100.0)
        assert driver.is_home_work_home

    def test_invalid_window(self):
        with pytest.raises(ValueError):
            Driver("d1", A, B, start_ts=10.0, end_ts=10.0)
        with pytest.raises(ValueError):
            Driver("d1", A, B, start_ts=10.0, end_ts=5.0)

    def test_with_window_creates_copy(self):
        driver = Driver("d1", A, B, start_ts=0.0, end_ts=100.0)
        other = driver.with_window(50.0, 500.0)
        assert other.driver_id == "d1"
        assert other.working_window == (50.0, 500.0)
        assert driver.working_window == (0.0, 100.0)


class TestTask:
    def make(self, **overrides):
        defaults = dict(
            task_id="m1",
            publish_ts=0.0,
            source=A,
            destination=B,
            start_deadline_ts=600.0,
            end_deadline_ts=1800.0,
            price=8.0,
        )
        defaults.update(overrides)
        return Task(**defaults)

    def test_basic_properties(self):
        task = self.make(wtp=10.0, distance_km=5.0)
        assert task.valuation == 10.0
        assert task.consumer_surplus == pytest.approx(2.0)
        assert task.is_publishable
        assert task.ride_window_s == pytest.approx(1200.0)

    def test_valuation_defaults_to_price(self):
        task = self.make()
        assert task.valuation == task.price
        assert task.consumer_surplus == 0.0
        assert task.is_publishable

    def test_unpublishable_when_price_exceeds_wtp(self):
        task = self.make(wtp=5.0)
        assert not task.is_publishable

    def test_invalid_time_ordering(self):
        with pytest.raises(ValueError):
            self.make(publish_ts=700.0)  # publish after start deadline
        with pytest.raises(ValueError):
            self.make(end_deadline_ts=600.0)  # end not after start

    def test_negative_values_rejected(self):
        with pytest.raises(ValueError):
            self.make(price=-1.0)
        with pytest.raises(ValueError):
            self.make(wtp=-1.0)
        with pytest.raises(ValueError):
            self.make(distance_km=-0.1)

    def test_with_price_repricing(self):
        task = self.make(price=8.0, wtp=12.0)
        repriced = task.with_price(9.5)
        assert repriced.price == 9.5
        assert repriced.wtp == 12.0
        assert repriced.task_id == task.task_id
        assert task.price == 8.0
