"""Tests for the market cost model."""

import numpy as np
import pytest

from repro.geo import GeoPoint, HaversineEstimator, TravelModel, haversine_km
from repro.market import MarketCostModel, Task

A = GeoPoint(41.15, -8.61)
B = A.offset_km(0.0, 6.0)
C = A.offset_km(3.0, 0.0)


def flat_cost_model(speed=30.0, cost_per_km=0.1):
    return MarketCostModel(
        TravelModel(HaversineEstimator(circuity=1.0), speed_kmh=speed, cost_per_km=cost_per_km)
    )


def make_task(distance_km=None):
    return Task(
        task_id="m",
        publish_ts=0.0,
        source=A,
        destination=B,
        start_deadline_ts=100.0,
        end_deadline_ts=2000.0,
        price=5.0,
        distance_km=distance_km,
    )


class TestScalarLegs:
    def test_leg_time_and_cost(self):
        model = flat_cost_model()
        leg = model.leg(A, B)
        distance = haversine_km(A, B)
        assert leg.time_s == pytest.approx(distance / 30.0 * 3600.0, rel=1e-9)
        assert leg.cost == pytest.approx(distance * 0.1, rel=1e-9)

    def test_driver_direct_leg_matches_leg(self):
        model = flat_cost_model()
        assert model.driver_direct_leg(A, B) == model.leg(A, B)

    def test_task_distance_prefers_trace_value(self):
        model = flat_cost_model()
        task = make_task(distance_km=7.5)
        assert model.task_distance_km(task) == 7.5
        assert model.task_cost(task) == pytest.approx(0.75)
        assert model.task_duration_s(task) == pytest.approx(7.5 / 30.0 * 3600.0)

    def test_task_distance_falls_back_to_estimate(self):
        model = flat_cost_model()
        task = make_task(distance_km=None)
        assert model.task_distance_km(task) == pytest.approx(haversine_km(A, B), rel=1e-9)

    def test_default_model_used_when_none_given(self):
        model = MarketCostModel()
        assert model.travel_model.speed_kmh == pytest.approx(30.0)


class TestVectorisedLegs:
    def test_pairwise_matrix_matches_scalar(self):
        model = flat_cost_model()
        origins = [A, B]
        destinations = [B, C, A]
        times, costs = model.pairwise_leg_matrix(origins, destinations)
        assert times.shape == (2, 3)
        for i, origin in enumerate(origins):
            for j, destination in enumerate(destinations):
                scalar = model.leg(origin, destination)
                assert times[i, j] == pytest.approx(scalar.time_s, rel=2e-3)
                assert costs[i, j] == pytest.approx(scalar.cost, rel=2e-3)

    def test_pairwise_matrix_applies_circuity(self):
        curvy = MarketCostModel(
            TravelModel(HaversineEstimator(circuity=1.5), speed_kmh=30.0, cost_per_km=0.1)
        )
        flat = flat_cost_model()
        t_curvy, _ = curvy.pairwise_leg_matrix([A], [B])
        t_flat, _ = flat.pairwise_leg_matrix([A], [B])
        assert t_curvy[0, 0] == pytest.approx(1.5 * t_flat[0, 0], rel=1e-9)

    def test_legs_from_point_and_to_point(self):
        model = flat_cost_model()
        times_from, costs_from = model.legs_from_point(A, [B, C])
        times_to, costs_to = model.legs_to_point([B, C], A)
        assert times_from.shape == (2,)
        assert times_to.shape == (2,)
        # Symmetric metric: A->B equals B->A.
        assert times_from[0] == pytest.approx(times_to[0], rel=1e-9)
        assert costs_from[1] == pytest.approx(costs_to[1], rel=1e-9)

    def test_empty_inputs(self):
        model = flat_cost_model()
        times, costs = model.pairwise_leg_matrix([], [A])
        assert times.shape == (0, 1)
        assert costs.shape == (0, 1)

    def test_diagonal_is_zero(self):
        model = flat_cost_model()
        times, costs = model.pairwise_leg_matrix([A, B], [A, B])
        assert times[0, 0] == pytest.approx(0.0, abs=1e-9)
        assert costs[1, 1] == pytest.approx(0.0, abs=1e-9)
