"""Equivalence tests for the streaming market instance.

The contract of :class:`~repro.market.streaming.StreamingMarketInstance` is
strict: after any sequence of ``append_tasks`` batches, the incrementally
maintained task network and per-driver task maps must be **bit-identical**
(``np.array_equal``, not approx) to a from-scratch
:class:`~repro.market.instance.MarketInstance` over the same drivers and
tasks, and every solver must produce the same solution on either.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.market import MarketInstance, StreamingMarketInstance
from repro.offline import greedy_assignment
from repro.online import MaxMarginDispatcher, run_online

from ..conftest import build_random_instance

NETWORK_ARRAYS = ("durations_s", "service_costs", "prices", "valuations", "servable", "topo_order")
MAP_ARRAYS = (
    "entry_ok",
    "exit_ok",
    "source_leg_times",
    "source_leg_costs",
    "sink_leg_times",
    "sink_leg_costs",
)


def assert_equivalent(stream: StreamingMarketInstance, reference: MarketInstance) -> None:
    """Every derived structure of ``stream`` matches ``reference`` bit for bit."""
    net_a, net_b = stream.task_network, reference.task_network
    assert net_a.tasks == net_b.tasks
    for name in NETWORK_ARRAYS:
        assert np.array_equal(getattr(net_a, name), getattr(net_b, name)), name
    for m in range(net_a.task_count):
        assert np.array_equal(net_a.successors[m], net_b.successors[m])
        assert np.array_equal(net_a.leg_times[m], net_b.leg_times[m])
        assert np.array_equal(net_a.leg_costs[m], net_b.leg_costs[m])
    reference_maps = reference.task_maps
    assert set(stream.task_maps) == set(reference_maps)
    for driver_id, incremental in stream.task_maps.items():
        rebuilt = reference_maps[driver_id]
        for name in MAP_ARRAYS:
            assert np.array_equal(getattr(incremental, name), getattr(rebuilt, name)), (
                driver_id,
                name,
            )
        assert incremental.direct_leg == rebuilt.direct_leg


@pytest.fixture(scope="module")
def base_instance():
    return build_random_instance(task_count=60, driver_count=12, seed=29)


class TestIncrementalEquivalence:
    def test_batched_appends_match_rebuild(self, base_instance):
        stream = StreamingMarketInstance(base_instance.drivers, base_instance.cost_model)
        tasks = list(base_instance.tasks)
        for lo, hi in [(0, 10), (10, 11), (11, 35), (35, 35), (35, 60)]:
            stream.append_tasks(tasks[lo:hi])
        assert_equivalent(stream, stream.rebuild())

    def test_single_shot_matches_plain_instance(self, base_instance):
        stream = StreamingMarketInstance.from_instance(base_instance)
        assert_equivalent(stream, base_instance)

    def test_greedy_solution_parity(self, base_instance):
        stream = StreamingMarketInstance(base_instance.drivers, base_instance.cost_model)
        tasks = list(base_instance.tasks)
        for lo in range(0, len(tasks), 13):
            stream.append_tasks(tasks[lo : lo + 13])
        incremental = greedy_assignment(stream.snapshot())
        rebuilt = greedy_assignment(stream.rebuild())
        assert incremental.assignment() == rebuilt.assignment()
        assert [p.profit for p in incremental.plans] == [p.profit for p in rebuilt.plans]

    def test_online_simulator_consumes_streaming_instance(self, base_instance):
        stream = StreamingMarketInstance.from_instance(base_instance)
        streamed = run_online(stream, MaxMarginDispatcher())
        static = run_online(base_instance, MaxMarginDispatcher())
        assert streamed.assignment() == static.assignment()
        assert [r.profit for r in streamed.records] == [r.profit for r in static.records]

    @settings(max_examples=12, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    @given(cuts=st.lists(st.integers(min_value=0, max_value=40), max_size=4))
    def test_any_batch_split_is_equivalent(self, cuts):
        instance = build_random_instance(task_count=40, driver_count=8, seed=17)
        tasks = list(instance.tasks)
        boundaries = sorted({0, len(tasks), *cuts})
        stream = StreamingMarketInstance(instance.drivers, instance.cost_model)
        for lo, hi in zip(boundaries[:-1], boundaries[1:]):
            stream.append_tasks(tasks[lo:hi])
        assert_equivalent(stream, instance)


class TestStreamingApi:
    def test_read_api_mirrors_market_instance(self, base_instance):
        stream = StreamingMarketInstance.from_instance(base_instance)
        assert stream.drivers == base_instance.drivers
        assert stream.tasks == base_instance.tasks
        assert stream.task_count == base_instance.task_count
        assert stream.driver_count == base_instance.driver_count
        assert stream.task_index(base_instance.tasks[3].task_id) == 3
        with pytest.raises(KeyError):
            stream.task_map("nobody")
        with pytest.raises(KeyError):
            stream.task_index("no-such-task")

    def test_snapshot_shares_derived_state(self, base_instance):
        stream = StreamingMarketInstance.from_instance(base_instance)
        snapshot = stream.snapshot()
        assert snapshot.task_network is stream.task_network
        assert snapshot.task_maps is stream.task_maps

    def test_empty_append_is_a_noop(self, base_instance):
        stream = StreamingMarketInstance.from_instance(base_instance)
        before = stream.task_network
        assert stream.append_tasks(()) == ()
        assert stream.task_network is before

    def test_duplicate_ids_rejected(self, base_instance):
        stream = StreamingMarketInstance.from_instance(base_instance)
        with pytest.raises(ValueError):
            stream.append_tasks([base_instance.tasks[0]])
        with pytest.raises(ValueError):
            StreamingMarketInstance(
                base_instance.drivers,
                base_instance.cost_model,
                tasks=(base_instance.tasks[0], base_instance.tasks[0]),
            )

    def test_duplicate_driver_ids_rejected(self, base_instance):
        drivers = (base_instance.drivers[0], base_instance.drivers[0])
        with pytest.raises(ValueError):
            StreamingMarketInstance(drivers, base_instance.cost_model)

    def test_affected_drivers_are_the_ones_gaining_entry_tasks(self, base_instance):
        tasks = list(base_instance.tasks)
        stream = StreamingMarketInstance(base_instance.drivers, base_instance.cost_model)
        stream.append_tasks(tasks[:30])
        before = {
            driver_id: set(task_map.entry_tasks().tolist())
            for driver_id, task_map in stream.task_maps.items()
        }
        affected = set(stream.append_tasks(tasks[30:]))
        for driver_id, task_map in stream.task_maps.items():
            gained = set(task_map.entry_tasks().tolist()) - before[driver_id]
            assert (len(gained) > 0) == (driver_id in affected)
