"""Tests for task-map construction (Eqs. 1-3 of the paper)."""

import numpy as np
import pytest

from repro.market import (
    Driver,
    MarketCostModel,
    Task,
    build_driver_task_map,
    build_driver_task_maps,
    build_task_network,
)
from repro.market.taskmap import SINK_NODE, SOURCE_NODE

from ..conftest import build_chain_instance, build_random_instance, flat_travel_model, point_east


@pytest.fixture(scope="module")
def chain():
    return build_chain_instance()


class TestTaskNetwork:
    def test_empty_network(self):
        network = build_task_network([], MarketCostModel(flat_travel_model()))
        assert network.task_count == 0
        assert network.arc_count() == 0

    def test_servable_eq1(self):
        cost_model = MarketCostModel(flat_travel_model())
        # 5 km ride takes 600 s at 30 km/h; a 300 s window is not enough.
        tight = Task(
            task_id="tight",
            publish_ts=0.0,
            source=point_east(0.0),
            destination=point_east(5.0),
            start_deadline_ts=100.0,
            end_deadline_ts=400.0,
            price=5.0,
            distance_km=5.0,
        )
        roomy = Task(
            task_id="roomy",
            publish_ts=0.0,
            source=point_east(0.0),
            destination=point_east(5.0),
            start_deadline_ts=100.0,
            end_deadline_ts=100.0 + 700.0,
            price=5.0,
            distance_km=5.0,
        )
        network = build_task_network([tight, roomy], cost_model)
        assert not network.servable[0]
        assert network.servable[1]

    def test_chain_arc_exists_and_respects_time(self, chain):
        network = chain.task_network
        # Task 0 ends at km 5 where task 1 starts, with 300 s of slack: arc exists.
        assert 1 in set(int(x) for x in network.successors[0])
        # The reverse arc would require time travel.
        assert 0 not in set(int(x) for x in network.successors[1])

    def test_successor_leg_lookup(self, chain):
        network = chain.task_network
        leg = network.successor_leg(0, 1)
        assert leg is not None
        assert leg.time_s == pytest.approx(0.0, abs=1.0)  # same location
        assert network.successor_leg(1, 0) is None

    def test_topo_order_sorted_by_start_deadline(self, chain):
        network = chain.task_network
        deadlines = [chain.tasks[int(i)].start_deadline_ts for i in network.topo_order]
        assert deadlines == sorted(deadlines)

    def test_no_self_arcs(self):
        instance = build_random_instance(task_count=25, driver_count=5, seed=8)
        network = instance.task_network
        for m, successors in enumerate(network.successors):
            assert m not in set(int(x) for x in successors)

    def test_arcs_only_between_servable_tasks(self):
        instance = build_random_instance(task_count=40, driver_count=5, seed=9)
        network = instance.task_network
        for m, successors in enumerate(network.successors):
            if successors.size and not network.servable[m]:
                pytest.fail(f"unservable task {m} has outgoing arcs")
            for m_prime in (int(x) for x in successors):
                assert network.servable[m_prime]

    def test_arc_time_feasibility_invariant(self):
        """Every arc m -> m' must satisfy leg_time <= start'(m') - end(m)."""
        instance = build_random_instance(task_count=40, driver_count=5, seed=10)
        network = instance.task_network
        for m, successors in enumerate(network.successors):
            end_m = instance.tasks[m].end_deadline_ts
            for j, m_prime in enumerate(int(x) for x in successors):
                slack = instance.tasks[m_prime].start_deadline_ts - end_m
                assert network.leg_times[m][j] <= slack + 1e-6


class TestDriverTaskMap:
    def test_chainer_sees_both_tasks(self, chain):
        task_map = chain.task_map("chainer")
        assert set(int(x) for x in task_map.entry_tasks()) == {0, 1}
        assert set(int(x) for x in task_map.usable_tasks()) == {0, 1}
        assert task_map.has_any_task()

    def test_stranded_driver_sees_nothing(self, chain):
        task_map = chain.task_map("stranded")
        assert task_map.entry_tasks().size == 0
        assert task_map.usable_tasks().size == 0
        assert not task_map.has_any_task()

    def test_arc_exists_queries(self, chain):
        task_map = chain.task_map("chainer")
        assert task_map.arc_exists(SOURCE_NODE, 0)
        assert task_map.arc_exists(0, 1)
        assert task_map.arc_exists(1, SINK_NODE)
        assert task_map.arc_exists(SOURCE_NODE, SINK_NODE)
        assert not task_map.arc_exists(1, 0)

    def test_successors_respect_allowed_mask(self, chain):
        task_map = chain.task_map("chainer")
        allowed = np.array([True, False])
        assert list(task_map.successors_of(0, allowed)) == []
        allowed = np.array([True, True])
        assert [int(x) for x in task_map.successors_of(0, allowed)] == [1]

    def test_eq2_source_arc_requires_reaching_pickup_in_time(self):
        """A driver whose shift starts too late cannot enter a task."""
        cost_model = MarketCostModel(flat_travel_model())
        task = Task(
            task_id="m",
            publish_ts=0.0,
            source=point_east(5.0),
            destination=point_east(10.0),
            start_deadline_ts=1000.0,
            end_deadline_ts=2000.0,
            price=5.0,
            distance_km=5.0,
        )
        network = build_task_network([task], cost_model)
        # 5 km approach takes 600 s.  Starting at 300 -> arrives 900 <= 1000: ok.
        early = Driver("early", point_east(0.0), point_east(10.0), 300.0, 4000.0)
        # Starting at 500 -> arrives 1100 > 1000: no entry arc.
        late = Driver("late", point_east(0.0), point_east(10.0), 500.0, 4000.0)
        early_map = build_driver_task_map(early, network, cost_model)
        late_map = build_driver_task_map(late, network, cost_model)
        assert early_map.entry_ok[0]
        assert not late_map.entry_ok[0]

    def test_eq3_sink_arc_requires_reaching_home_in_time(self):
        """A driver who cannot reach her destination after the task cannot use it."""
        cost_model = MarketCostModel(flat_travel_model())
        task = Task(
            task_id="m",
            publish_ts=0.0,
            source=point_east(0.0),
            destination=point_east(5.0),
            start_deadline_ts=1000.0,
            end_deadline_ts=1800.0,
            price=5.0,
            distance_km=5.0,
        )
        network = build_task_network([task], cost_model)
        # From the drop-off (km 5) home to km 10 takes 600 s after the 1800 s deadline.
        relaxed = Driver("relaxed", point_east(0.0), point_east(10.0), 0.0, 2500.0)
        hurried = Driver("hurried", point_east(0.0), point_east(10.0), 0.0, 2300.0)
        assert build_driver_task_map(relaxed, network, cost_model).exit_ok[0]
        assert not build_driver_task_map(hurried, network, cost_model).exit_ok[0]

    def test_build_driver_task_maps_rejects_duplicates(self, chain):
        driver = chain.drivers[0]
        with pytest.raises(ValueError):
            build_driver_task_maps([driver, driver], chain.task_network, chain.cost_model)

    def test_empty_network_driver_map(self):
        cost_model = MarketCostModel(flat_travel_model())
        network = build_task_network([], cost_model)
        driver = Driver("d", point_east(0.0), point_east(1.0), 0.0, 100.0)
        task_map = build_driver_task_map(driver, network, cost_model)
        assert task_map.task_count == 0
        assert not task_map.has_any_task()
        assert task_map.path_profit(()) == 0.0


class TestPathEvaluation:
    def test_empty_path_profit_zero(self, chain):
        task_map = chain.task_map("chainer")
        assert task_map.path_profit([]) == 0.0
        assert task_map.path_excess_cost([]) == 0.0

    def test_single_task_profit_arithmetic(self, chain):
        """Chainer lives at task 0's source; her destination is at km 10.

        Taking only task 0 (km 0 -> 5): she pockets the price, pays the ride
        cost, pays the 5 km empty leg to her destination, and is credited the
        10 km she would have driven anyway: 5 - 0.6 - 0.6 + 1.2 = 5.0.
        """
        task_map = chain.task_map("chainer")
        profit = task_map.path_profit([0])
        assert profit == pytest.approx(5.0, rel=0.01)

    def test_chain_profit_arithmetic(self, chain):
        """Both tasks cover her entire route, so she pockets both prices."""
        task_map = chain.task_map("chainer")
        profit = task_map.path_profit([0, 1])
        assert profit == pytest.approx(10.0, rel=0.01)

    def test_excess_cost_of_chain_is_zero(self, chain):
        task_map = chain.task_map("chainer")
        assert task_map.path_excess_cost([0, 1]) == pytest.approx(0.0, abs=0.02)

    def test_profit_plus_excess_cost_equals_prices(self, chain):
        """By Eq. (4), profit = sum of prices - excess cost for any path."""
        task_map = chain.task_map("chainer")
        for path in ([0], [1], [0, 1]):
            prices = sum(chain.tasks[m].price for m in path)
            assert task_map.path_profit(path) == pytest.approx(
                prices - task_map.path_excess_cost(path), rel=1e-9
            )

    def test_social_welfare_uses_valuation(self, chain):
        task_map = chain.task_map("chainer")
        # No WTP recorded: valuation == price, so both objectives coincide.
        assert task_map.path_profit([0, 1], use_valuation=True) == pytest.approx(
            task_map.path_profit([0, 1])
        )

    def test_feasibility_checks(self, chain):
        task_map = chain.task_map("chainer")
        assert task_map.is_feasible_path([])
        assert task_map.is_feasible_path([0])
        assert task_map.is_feasible_path([0, 1])
        assert not task_map.is_feasible_path([1, 0])
        assert not task_map.is_feasible_path([0, 0])
        stranded_map = chain.task_map("stranded")
        assert not stranded_map.is_feasible_path([0])

    def test_path_profit_rejects_missing_arc(self, chain):
        task_map = chain.task_map("chainer")
        with pytest.raises(ValueError):
            task_map.path_profit([1, 0])
