"""Tests for MarketInstance and the trace -> task pipeline."""

import pytest

from repro.market import Driver, MarketInstance, Task, market_from_trace, tasks_from_trips
from repro.pricing import LinearPricing, ProportionalWtp
from repro.trace import generate_drivers, generate_trace

from ..conftest import build_chain_instance, build_random_instance, point_east


class TestMarketInstance:
    def test_counts(self):
        instance = build_chain_instance()
        assert instance.driver_count == 2
        assert instance.task_count == 2

    def test_duplicate_driver_ids_rejected(self):
        instance = build_chain_instance()
        driver = instance.drivers[0]
        with pytest.raises(ValueError):
            MarketInstance.create(
                drivers=[driver, driver], tasks=instance.tasks, cost_model=instance.cost_model
            )

    def test_duplicate_task_ids_rejected(self):
        instance = build_chain_instance()
        task = instance.tasks[0]
        with pytest.raises(ValueError):
            MarketInstance.create(
                drivers=instance.drivers, tasks=[task, task], cost_model=instance.cost_model
            )

    def test_task_map_lookup(self):
        instance = build_chain_instance()
        assert instance.task_map("chainer").driver.driver_id == "chainer"
        with pytest.raises(KeyError):
            instance.task_map("nobody")

    def test_task_index_lookup(self):
        instance = build_chain_instance()
        assert instance.task_index("task-0") == 0
        assert instance.task_index("task-1") == 1
        with pytest.raises(KeyError):
            instance.task_index("missing")

    def test_task_network_cached(self):
        instance = build_chain_instance()
        assert instance.task_network is instance.task_network

    def test_with_drivers_reuses_network(self):
        instance = build_random_instance(task_count=20, driver_count=6, seed=4)
        network = instance.task_network
        smaller = instance.with_drivers(instance.drivers[:3])
        assert smaller.driver_count == 3
        assert smaller.task_count == instance.task_count
        assert smaller.task_network is network

    def test_with_tasks_replaces_tasks(self):
        instance = build_chain_instance()
        reduced = instance.with_tasks(instance.tasks[:1])
        assert reduced.task_count == 1
        assert reduced.driver_count == instance.driver_count

    def test_subset_tasks_orders_by_publish_time(self):
        instance = build_random_instance(task_count=20, driver_count=4, seed=6)
        subset = instance.subset_tasks(5)
        assert subset.task_count == 5
        publishes = [t.publish_ts for t in subset.tasks]
        assert publishes == sorted(publishes)
        assert max(publishes) <= min(
            t.publish_ts for t in instance.tasks if t.task_id not in {s.task_id for s in subset.tasks}
        )

    def test_subset_tasks_invalid(self):
        instance = build_chain_instance()
        with pytest.raises(ValueError):
            instance.subset_tasks(-1)


class TestTasksFromTrips:
    def test_one_task_per_trip(self):
        trips = generate_trace(trip_count=30, seed=1)
        tasks = tasks_from_trips(trips)
        assert len(tasks) == 30
        assert len({t.task_id for t in tasks}) == 30

    def test_deadlines_follow_trip_times(self):
        trips = generate_trace(trip_count=10, seed=2)
        tasks = tasks_from_trips(trips, publish_lead_s=300.0)
        for trip, task in zip(trips, tasks):
            assert task.start_deadline_ts == pytest.approx(trip.start_ts)
            assert task.end_deadline_ts == pytest.approx(trip.end_ts)
            assert task.publish_ts == pytest.approx(trip.start_ts - 300.0)
            assert task.distance_km == pytest.approx(trip.distance_km)

    def test_prices_follow_eq15(self):
        trips = generate_trace(trip_count=10, seed=3)
        policy = LinearPricing(alpha=1.5)
        tasks = tasks_from_trips(trips, pricing=policy)
        for trip, task in zip(trips, tasks):
            expected = 1.5 * policy.schedule.fare(trip.distance_km, trip.duration_s)
            assert task.price == pytest.approx(expected)

    def test_wtp_model_generates_publishable_tasks(self):
        trips = generate_trace(trip_count=40, seed=4)
        tasks = tasks_from_trips(trips, wtp_model=ProportionalWtp(max_markup=0.4))
        assert all(t.is_publishable for t in tasks)
        assert any(t.consumer_surplus > 0 for t in tasks)

    def test_negative_lead_rejected(self):
        with pytest.raises(ValueError):
            tasks_from_trips([], publish_lead_s=-1.0)

    def test_wtp_sampling_is_deterministic(self):
        trips = generate_trace(trip_count=15, seed=5)
        a = tasks_from_trips(trips, wtp_model=ProportionalWtp(), seed=99)
        b = tasks_from_trips(trips, wtp_model=ProportionalWtp(), seed=99)
        assert [t.wtp for t in a] == [t.wtp for t in b]


class TestMarketFromTrace:
    def test_end_to_end_construction(self):
        trips = generate_trace(trip_count=25, seed=6)
        drivers = generate_drivers(count=5, seed=7)
        market = market_from_trace(trips, drivers)
        assert market.task_count == 25
        assert market.driver_count == 5
        assert market.task_network.task_count == 25
