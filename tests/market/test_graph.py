"""Tests for the merged market graph and diameter computation."""

import networkx as nx
import pytest

from repro.market import (
    build_driver_graph,
    build_market_graph,
    driver_diameter,
    graph_summary,
    market_diameter,
)
from repro.market.graph import driver_sink, driver_source, task_node

from ..conftest import build_chain_instance, build_random_instance


@pytest.fixture(scope="module")
def chain():
    return build_chain_instance()


@pytest.fixture(scope="module")
def random_instance():
    return build_random_instance(task_count=30, driver_count=6, seed=12)


class TestDriverGraph:
    def test_chainer_graph_structure(self, chain):
        graph = build_driver_graph(chain.task_map("chainer"))
        src = driver_source("chainer")
        dst = driver_sink("chainer")
        assert graph.has_edge(src, dst)
        assert graph.has_edge(src, task_node(0))
        assert graph.has_edge(task_node(0), task_node(1))
        assert graph.has_edge(task_node(1), dst)
        assert not graph.has_edge(task_node(1), task_node(0))

    def test_stranded_graph_has_only_direct_edge(self, chain):
        graph = build_driver_graph(chain.task_map("stranded"))
        assert graph.number_of_edges() == 1
        assert graph.has_edge(driver_source("stranded"), driver_sink("stranded"))

    def test_edge_attributes_present(self, chain):
        graph = build_driver_graph(chain.task_map("chainer"))
        data = graph.get_edge_data(driver_source("chainer"), task_node(0))
        assert "cost" in data and "time_s" in data
        node_data = graph.nodes[task_node(0)]
        assert node_data["kind"] == "task"
        assert node_data["price"] == pytest.approx(5.0)

    def test_driver_graphs_are_acyclic(self, random_instance):
        for driver in random_instance.drivers:
            graph = build_driver_graph(random_instance.task_map(driver.driver_id))
            assert nx.is_directed_acyclic_graph(graph)


class TestMarketGraph:
    def test_merged_graph_contains_all_driver_terminals(self, chain):
        graph = build_market_graph(chain)
        for driver in chain.drivers:
            assert driver_source(driver.driver_id) in graph
            assert driver_sink(driver.driver_id) in graph

    def test_merged_graph_is_acyclic(self, random_instance):
        assert nx.is_directed_acyclic_graph(build_market_graph(random_instance))

    def test_task_nodes_shared_between_drivers(self, chain):
        graph = build_market_graph(chain)
        task_nodes = [n for n in graph.nodes if n[0] == "task"]
        # Only the chainer can serve tasks, so exactly the two tasks appear once.
        assert len(task_nodes) == 2


class TestDiameter:
    def test_chain_instance_diameter(self, chain):
        assert driver_diameter(chain.task_map("chainer")) == 2
        assert driver_diameter(chain.task_map("stranded")) == 0
        assert market_diameter(chain) == 2

    def test_diameter_bounded_by_task_count(self, random_instance):
        d = market_diameter(random_instance)
        assert 0 <= d <= random_instance.task_count

    def test_diameter_bounded_by_graph_longest_chain(self, random_instance):
        """The source-rooted diameter can never exceed the longest task chain
        anywhere in the driver's graph (networkx cross-check)."""
        for driver in random_instance.drivers[:3]:
            task_map = random_instance.task_map(driver.driver_id)
            graph = build_driver_graph(task_map)
            longest = nx.dag_longest_path(graph)
            task_hops = sum(1 for node in longest if node[0] == "task")
            assert driver_diameter(task_map) <= task_hops


class TestSummary:
    def test_graph_summary_keys_and_consistency(self, random_instance):
        summary = graph_summary(random_instance)
        assert summary["drivers"] == random_instance.driver_count
        assert summary["tasks"] == random_instance.task_count
        assert summary["servable_tasks"] <= summary["tasks"]
        assert summary["diameter"] == market_diameter(random_instance)
        assert summary["driver_entry_arcs"] <= summary["driver_exit_arcs"]
