"""Tests for the spatial market partitioner."""

import pytest

from repro.distributed import SpatialPartitioner, translate_assignment
from repro.geo import PORTO

from ..conftest import build_random_instance


@pytest.fixture(scope="module")
def instance():
    return build_random_instance(task_count=60, driver_count=15, seed=33)


class TestPartitioner:
    def test_invalid_grid(self):
        with pytest.raises(ValueError):
            SpatialPartitioner(PORTO, 0, 3)

    def test_shard_count(self):
        assert SpatialPartitioner(PORTO, 2, 3).shard_count == 6

    def test_single_shard_contains_everything(self, instance):
        plan = SpatialPartitioner(PORTO, 1, 1).partition(instance)
        assert plan.shard_count == 1
        shard = plan.shards[0]
        assert shard.task_count == instance.task_count
        assert shard.driver_count == instance.driver_count
        assert plan.unassigned_tasks == ()

    def test_tasks_partitioned_without_loss_or_duplication(self, instance):
        plan = SpatialPartitioner(PORTO, 3, 3).partition(instance)
        all_indices = [i for shard in plan.shards for i in shard.global_task_indices]
        assert sorted(all_indices) == list(range(instance.task_count))

    def test_drivers_partitioned_without_loss_or_duplication(self, instance):
        plan = SpatialPartitioner(PORTO, 3, 3).partition(instance)
        all_drivers = [d for shard in plan.shards for d in shard.global_driver_ids]
        assert sorted(all_drivers) == sorted(d.driver_id for d in instance.drivers)

    def test_tasks_routed_to_shard_of_their_pickup(self, instance):
        partitioner = SpatialPartitioner(PORTO, 2, 2)
        plan = partitioner.partition(instance)
        for shard in plan.shards:
            for local_index, global_index in enumerate(shard.global_task_indices):
                task = instance.tasks[global_index]
                assert partitioner.shard_index(task.source) == shard.spec.shard_id
                # Local instance stores the same task object.
                assert shard.instance.tasks[local_index].task_id == task.task_id

    def test_shard_of_task_lookup(self, instance):
        plan = SpatialPartitioner(PORTO, 2, 2).partition(instance)
        shard_id = plan.shard_of_task(0)
        assert 0 in plan.shards[shard_id].global_task_indices
        with pytest.raises(KeyError):
            plan.shard_of_task(10_000)

    def test_shard_regions_tile_the_city(self, instance):
        plan = SpatialPartitioner(PORTO, 2, 2).partition(instance)
        total_area = sum(s.spec.region.area_km2() for s in plan.shards)
        assert total_area == pytest.approx(PORTO.area_km2(), rel=0.01)


class TestTranslateAssignment:
    def test_local_indices_map_back_to_global(self, instance):
        plan = SpatialPartitioner(PORTO, 2, 2).partition(instance)
        shard = max(plan.shards, key=lambda s: s.task_count)
        local_assignment = {"some-driver": (0,)}
        translated = translate_assignment(shard, local_assignment)
        assert translated == {"some-driver": (shard.global_task_indices[0],)}

    def test_empty_assignment(self, instance):
        plan = SpatialPartitioner(PORTO, 2, 2).partition(instance)
        assert translate_assignment(plan.shards[0], {}) == {}
