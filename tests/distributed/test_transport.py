"""Zero-copy shared-memory transport: layout, lifecycle, parity (contract 16).

Three layers are pinned here:

* the packing layer — descriptors round-trip payloads and deltas through a
  shared segment value-identically, ids and ``NaN`` sentinels included;
* the shipper — segments are recycled through the free list (a steady-state
  stream reuses a handful of segments), ``release`` is idempotent,
  ``close()`` unlinks everything, and a failed shipment falls back to
  pickle without losing the batch;
* **parity contract 16** — shm == pickle merges, bit-identical, for the
  offline pooled path and the streaming path alike, with the pickle
  transport (and the serial executor) as the reference.
"""

import os
import pickle

import numpy as np
import pytest

from repro.distributed import (
    DistributedCoordinator,
    PersistentWorkerPool,
    ShmShipper,
    SpatialPartitioner,
    TransportStats,
    delta_from_descriptor,
    delta_from_tasks,
    delta_wire_bytes,
    payload_from_descriptor,
    payload_from_shard,
    payload_wire_bytes,
    tasks_from_delta,
)
from repro.distributed.pool import _pool_discard, _pool_open, next_stream_token
from repro.distributed.transport import _MAX_FREE_SEGMENTS, _decode_ids, _encode_ids
from repro.geo import PORTO
from repro.online.batch import BatchConfig

from ..conftest import build_random_instance
from .test_stream import stream_fingerprint

WINDOW_S = 600.0


def shm_entries(prefix: str):
    """Live ``/dev/shm`` segments created under ``prefix`` (the leak scan)."""
    root = "/dev/shm"
    if not os.path.isdir(root):  # non-POSIX-shm platform: nothing to scan
        return []
    return sorted(name for name in os.listdir(root) if name.startswith(prefix))


@pytest.fixture(scope="module")
def instance():
    return build_random_instance(task_count=60, driver_count=15, seed=37)


@pytest.fixture(scope="module")
def plan(instance):
    return SpatialPartitioner(PORTO, 2, 2).partition(instance)


def solve_fingerprint(result):
    return (
        result.solution.assignment(),
        tuple((p.driver_id, p.task_indices, p.profit) for p in result.solution.plans),
        result.solution.total_value,
    )


class TestIdCodec:
    def test_round_trip(self):
        ids = ("plain", "", "unicode-éçø", "t" * 300)
        assert _decode_ids(*_encode_ids(ids)) == ids

    def test_empty(self):
        blob, lens = _encode_ids(())
        assert blob.size == 0 and lens.size == 0
        assert _decode_ids(blob, lens) == ()


class TestDescriptorRoundTrip:
    def test_payload_round_trip_is_value_identical(self, plan):
        shard = max(plan.shards, key=lambda s: s.task_count)
        payload = payload_from_shard(shard)
        shipper = ShmShipper()
        try:
            desc = shipper.ship_payload(payload)
            rebuilt = payload_from_descriptor(desc)
            assert rebuilt.shard_id == payload.shard_id
            assert rebuilt.driver_ids == payload.driver_ids
            assert rebuilt.task_ids == payload.task_ids
            assert rebuilt.cost_model is payload.cost_model
            for name in type(payload).ARRAY_FIELDS:
                got, want = getattr(rebuilt, name), getattr(payload, name)
                # NaN sentinels must survive, so compare with equal_nan.
                assert np.array_equal(got, want, equal_nan=True), name
                assert got.dtype == np.float64 and got.flags["C_CONTIGUOUS"]
        finally:
            shipper.close()

    def test_delta_round_trip_is_value_identical(self, plan):
        shard = max(plan.shards, key=lambda s: s.task_count)
        delta = delta_from_tasks(shard.spec.shard_id, shard.instance.tasks)
        shipper = ShmShipper()
        try:
            rebuilt = delta_from_descriptor(shipper.ship_delta(delta))
            assert tasks_from_delta(rebuilt) == shard.instance.tasks
        finally:
            shipper.close()

    def test_descriptor_is_tiny_next_to_the_payload(self, plan):
        """The point of the transport: what crosses the pipe shrinks from the
        full array bytes to a descriptor of a few hundred bytes."""
        shard = max(plan.shards, key=lambda s: s.task_count)
        payload = payload_from_shard(shard)
        shipper = ShmShipper()
        try:
            desc = shipper.ship_payload(payload)
            assert len(pickle.dumps(desc)) < 1024
            assert payload_wire_bytes(payload) > len(pickle.dumps(desc))
        finally:
            shipper.close()


class TestShmShipper:
    def test_segments_are_reused_across_shipments(self, plan):
        delta = delta_from_tasks(0, plan.shards[0].instance.tasks[:5])
        shipper = ShmShipper()
        try:
            first = shipper.ship_delta(delta)
            shipper.release(first.segment)
            second = shipper.ship_delta(delta)
            assert second.segment == first.segment  # recycled, not recreated
            assert shipper.stats.segments_created == 1
            assert shipper.stats.segment_reuses == 1
        finally:
            shipper.close()

    def test_release_is_idempotent(self, plan):
        delta = delta_from_tasks(0, plan.shards[0].instance.tasks[:5])
        shipper = ShmShipper()
        try:
            desc = shipper.ship_delta(delta)
            shipper.release(desc.segment)
            shipper.release(desc.segment)  # second release: no-op, no error
            assert shipper.stats.segments_created == 1
        finally:
            shipper.close()

    def test_excess_free_segments_are_retired(self, plan):
        delta = delta_from_tasks(0, plan.shards[0].instance.tasks[:3])
        shipper = ShmShipper()
        try:
            descs = [shipper.ship_delta(delta) for _ in range(_MAX_FREE_SEGMENTS + 2)]
            for desc in descs:
                shipper.release(desc.segment)
            assert shipper.stats.segments_retired == 2
            assert shm_entries(shipper.segment_prefix) != []  # free list kept
        finally:
            shipper.close()
        assert shm_entries(shipper.segment_prefix) == []

    def test_close_unlinks_everything_and_refuses_new_shipments(self, plan):
        delta = delta_from_tasks(0, plan.shards[0].instance.tasks[:5])
        shipper = ShmShipper()
        shipper.ship_delta(delta)  # left live on purpose
        released = shipper.ship_delta(delta)
        shipper.release(released.segment)
        assert shm_entries(shipper.segment_prefix) != []
        shipper.close()
        shipper.close()  # idempotent
        assert shm_entries(shipper.segment_prefix) == []
        with pytest.raises(RuntimeError, match="closed"):
            shipper.ship_delta(delta)

    def test_stats_account_bytes_on_both_sides(self, plan):
        shard = max(plan.shards, key=lambda s: s.task_count)
        payload = payload_from_shard(shard)
        stats = TransportStats(transport="shm")
        shipper = ShmShipper(stats=stats)
        try:
            shipper.ship_payload(payload)
            assert stats.shm_shipments == 1
            assert stats.shm_bytes >= payload_wire_bytes(payload)
            assert 0 < stats.descriptor_bytes < 1024
            assert stats.bytes_over_pipe == stats.descriptor_bytes
            snapshot = stats.snapshot()
            assert snapshot["transport"] == "shm"
            assert snapshot["shard_bytes"] == {payload.shard_id: stats.descriptor_bytes}
        finally:
            shipper.close()


class TestPoolTransportSelection:
    def test_unknown_transport_rejected(self):
        with pytest.raises(ValueError, match="unknown transport"):
            PersistentWorkerPool(executor="serial", transport="capnproto")
        with pytest.raises(ValueError, match="unknown transport"):
            DistributedCoordinator(
                SpatialPartitioner(PORTO, 1, 1), transport="capnproto"
            )

    def test_shm_is_inert_without_a_pipe(self, plan):
        """Serial/thread pools accept transport='shm' but ship nothing: no
        pipe exists, so both transports are trivially identical there."""
        delta = delta_from_tasks(0, plan.shards[0].instance.tasks[:5])
        for executor in ("serial", "thread"):
            with PersistentWorkerPool(executor=executor, worker_count=1, transport="shm") as pool:
                assert not pool.shm_active
                with pytest.raises(RuntimeError, match="shm-transport process pools"):
                    pool.shipper
                token = next_stream_token()
                pool.submit(
                    0, _pool_open, token, 0,
                    plan.shards[0].instance.drivers, plan.shards[0].instance.cost_model,
                    BatchConfig(window_s=WINDOW_S),
                ).result()
                assert pool.submit_append(0, token, delta).result() == delta.task_count
                assert pool.stats.shm_shipments == 0
                assert pool.stats.pickle_shipments == 0  # nothing crossed a pipe
                # Serial/thread sessions live in *this* process — discard
                # them so the lifecycle tests' registry counts stay clean.
                pool.submit(0, _pool_discard, token, 0).result()

    def test_failed_shipment_falls_back_to_pickle(self, plan):
        """A shipping failure degrades throughput, never correctness: the
        batch is re-sent pickled and counted as a fallback."""
        shard = max(plan.shards, key=lambda s: s.task_count)
        delta = delta_from_tasks(shard.spec.shard_id, shard.instance.tasks[:6])
        with PersistentWorkerPool(
            executor="process", worker_count=1, transport="shm"
        ) as pool:
            token = next_stream_token()
            pool.submit(
                0, _pool_open, token, shard.spec.shard_id,
                shard.instance.drivers, shard.instance.cost_model,
                BatchConfig(window_s=WINDOW_S),
            ).result()
            shipper = pool.shipper

            def refuse(_delta):
                raise OSError("no shared memory left")

            shipper.ship_delta = refuse
            count = pool.submit_append(0, token, delta).result()
            assert count == delta.task_count
            assert pool.stats.pickle_fallbacks == 1
            assert pool.stats.pickle_bytes >= delta_wire_bytes(delta)


class TestTransportParity:
    """Parity contract 16: shm == pickle merges, bit for bit."""

    def _offline(self, instance, transport):
        with DistributedCoordinator(
            SpatialPartitioner(PORTO, 2, 2),
            executor="process",
            max_workers=2,
            transport=transport,
        ) as coordinator:
            result = coordinator.solve(instance, reuse_pool=True)
            prefix = coordinator.stream_pool().shipper.segment_prefix if transport == "shm" else None
        if prefix is not None:
            assert shm_entries(prefix) == []
        return result

    def test_offline_shm_matches_pickle_and_serial(self, instance):
        shm = self._offline(instance, "shm")
        pickle_ = self._offline(instance, "pickle")
        with DistributedCoordinator(
            SpatialPartitioner(PORTO, 2, 2), executor="serial"
        ) as reference:
            serial = reference.solve(instance)
        assert solve_fingerprint(shm) == solve_fingerprint(pickle_)
        assert solve_fingerprint(shm) == solve_fingerprint(serial)
        # The reports tell the transports apart even though the merges can't.
        assert shm.report.transport == "shm"
        assert pickle_.report.transport == "pickle"
        assert shm.report.shm_bytes > 0
        assert 0 < shm.report.bytes_over_pipe < pickle_.report.bytes_over_pipe
        assert shm.report.pickle_fallbacks == 0

    def _stream(self, instance, config, transport):
        with DistributedCoordinator(
            SpatialPartitioner(PORTO, 2, 2),
            executor="process",
            max_workers=2,
            transport=transport,
        ) as coordinator:
            result = coordinator.solve_stream(instance, config=config)
            prefix = coordinator.stream_pool().shipper.segment_prefix if transport == "shm" else None
        if prefix is not None:
            assert shm_entries(prefix) == []
        return result

    def test_stream_shm_matches_pickle_and_serial(self, instance):
        config = BatchConfig(window_s=WINDOW_S)
        shm = self._stream(instance, config, "shm")
        pickle_ = self._stream(instance, config, "pickle")
        with DistributedCoordinator(
            SpatialPartitioner(PORTO, 2, 2), executor="serial"
        ) as reference:
            serial = reference.solve_stream(instance, config=config)
        assert stream_fingerprint(shm) == stream_fingerprint(pickle_)
        assert stream_fingerprint(shm) == stream_fingerprint(serial)
        assert shm.report.transport == "shm"
        assert shm.report.shm_bytes > 0
        assert shm.report.pickle_fallbacks == 0
        # A multi-batch stream recycles segments instead of allocating fresh
        # ones per batch — that's the steady-state behaviour the free list
        # exists for.
        assert shm.report.segment_reuses > 0

    def test_consecutive_streams_report_their_own_traffic(self, instance):
        """Pool stats are cumulative; per-stream reports must diff against
        the mark at open, so back-to-back streams don't double count."""
        config = BatchConfig(window_s=WINDOW_S)
        with DistributedCoordinator(
            SpatialPartitioner(PORTO, 2, 2),
            executor="process",
            max_workers=2,
            transport="shm",
        ) as coordinator:
            first = coordinator.solve_stream(instance, config=config)
            second = coordinator.solve_stream(instance, config=config)
        assert first.report.shm_bytes == second.report.shm_bytes
        assert first.report.bytes_over_pipe > 0
        pool_total = first.report.shm_bytes + second.report.shm_bytes
        assert pool_total == 2 * first.report.shm_bytes
