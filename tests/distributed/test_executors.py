"""Executor-policy parity for the distributed coordinator.

The coordinator promises that the merged solution is *bit-identical* across
its serial, thread-pool and process-pool fan-outs — same assignments, same
profits — because every executor consumes the same per-shard requests
(including the deterministic per-shard seeds) and the merge consumes results
in shard order.  These tests pin that promise, including the degenerate
cases: a single shard, shards holding only drivers, and fully empty shards
that must be short-circuited without ever reaching a worker.
"""

import pytest

from repro.distributed import DistributedCoordinator, SpatialPartitioner
from repro.distributed import coordinator as coordinator_module
from repro.geo import PORTO

from ..conftest import build_random_instance

EXECUTORS = ("serial", "thread", "process")


@pytest.fixture(scope="module")
def instance():
    return build_random_instance(task_count=60, driver_count=15, seed=37)


def merged_fingerprint(result):
    """Everything that must be identical across executors."""
    return (
        result.solution.assignment(),
        tuple((p.driver_id, p.task_indices, p.profit) for p in result.solution.plans),
        result.report.total_value,
        result.report.served_count,
        result.report.per_shard_values,
    )


class TestExecutorParity:
    @pytest.mark.parametrize("solver", ["greedy", "nearest", "maxMargin"])
    def test_all_executors_merge_identically(self, instance, solver):
        partitioner = SpatialPartitioner(PORTO, 2, 2)
        results = {
            executor: DistributedCoordinator(
                partitioner, solver, executor=executor, max_workers=2
            ).solve(instance)
            for executor in EXECUTORS
        }
        serial = merged_fingerprint(results["serial"])
        assert merged_fingerprint(results["thread"]) == serial
        assert merged_fingerprint(results["process"]) == serial

    def test_single_shard_parity(self, instance):
        partitioner = SpatialPartitioner(PORTO, 1, 1)
        serial = DistributedCoordinator(partitioner, "greedy").solve(instance)
        process = DistributedCoordinator(
            partitioner, "greedy", executor="process", max_workers=2
        ).solve(instance)
        assert merged_fingerprint(process) == merged_fingerprint(serial)
        assert serial.report.shard_count == 1

    def test_drivers_only_and_empty_shards(self, instance):
        # An 8x8 grid over a 60-task instance leaves many cells without tasks
        # and some with drivers but no tasks.
        partitioner = SpatialPartitioner(PORTO, 8, 8)
        plan = partitioner.partition(instance)
        assert any(s.driver_count > 0 and s.task_count == 0 for s in plan.shards)
        serial = DistributedCoordinator(partitioner, "greedy").solve(instance)
        process = DistributedCoordinator(
            partitioner, "greedy", executor="process", max_workers=2
        ).solve(instance)
        assert merged_fingerprint(process) == merged_fingerprint(serial)
        serial.solution.validate()

    def test_per_shard_seeds_are_deterministic_and_executor_independent(self, instance):
        # The "nearest" solver breaks ties randomly from the request seed.
        partitioner = SpatialPartitioner(PORTO, 3, 3)
        a = DistributedCoordinator(partitioner, "nearest", base_seed=11).solve(instance)
        b = DistributedCoordinator(partitioner, "nearest", base_seed=11).solve(instance)
        threaded = DistributedCoordinator(
            partitioner, "nearest", base_seed=11, executor="thread", max_workers=3
        ).solve(instance)
        assert merged_fingerprint(a) == merged_fingerprint(b) == merged_fingerprint(threaded)


class TestEmptyShardShortCircuit:
    def test_no_worker_sees_a_degenerate_shard(self, instance, monkeypatch):
        partitioner = SpatialPartitioner(PORTO, 8, 8)
        plan = partitioner.partition(instance)
        live = sum(1 for s in plan.shards if s.task_count and s.driver_count)
        assert live < plan.shard_count  # the grid really has degenerate shards

        seen = []
        original = coordinator_module.solve_shard

        def counting(shard, request):
            seen.append(shard.spec.shard_id)
            return original(shard, request)

        monkeypatch.setattr(coordinator_module, "solve_shard", counting)
        result = DistributedCoordinator(partitioner, "greedy").solve(instance)
        assert len(seen) == live
        # ... and no payload is built for them on the process path either.
        built = []
        original_payload = coordinator_module.payload_from_shard

        def counting_payload(shard):
            built.append(shard.spec.shard_id)
            return original_payload(shard)

        monkeypatch.setattr(coordinator_module, "payload_from_shard", counting_payload)
        DistributedCoordinator(partitioner, "greedy", executor="process", max_workers=2).solve(
            instance
        )
        assert len(built) == live
        # Merged reports still count every shard.
        assert result.report.shard_count == plan.shard_count
        assert len(result.report.per_shard_values) == plan.shard_count
        assert len(result.report.per_shard_durations) == plan.shard_count
        assert result.report.empty_shard_count == plan.shard_count - live

    def test_report_metadata(self, instance):
        result = DistributedCoordinator(
            SpatialPartitioner(PORTO, 2, 2), "greedy", executor="thread", max_workers=2
        ).solve(instance)
        assert result.report.executor == "thread"
        assert result.report.worker_count == 2


class TestConfiguration:
    def test_unknown_executor_rejected(self):
        with pytest.raises(ValueError):
            DistributedCoordinator(SpatialPartitioner(PORTO, 1, 1), executor="mpi")

    def test_legacy_parallel_flag_maps_to_thread(self):
        coordinator = DistributedCoordinator(SpatialPartitioner(PORTO, 1, 1), parallel=True)
        assert coordinator.executor == "thread"
        assert coordinator.parallel
        assert DistributedCoordinator(SpatialPartitioner(PORTO, 1, 1)).executor == "serial"
