"""Pool-aware shard placement (LPT) for offline solves.

Two halves: the :func:`lpt_slot_assignment` rule itself, and the
coordinator-level contract — ``solve(pool=..., load_report=...)`` packs
slots longest-processing-time-first but the merged solution is bit-identical
to round-robin placement and to the fork path (placement moves work between
slots, never changes it).
"""

import pytest

from repro.distributed import (
    DistributedCoordinator,
    PersistentWorkerPool,
    ShardLoadReport,
    SpatialPartitioner,
    lpt_slot_assignment,
)
from repro.experiments import ExperimentConfig, ExperimentScale, build_workload
from repro.trace import WorkingModel

SCALE = ExperimentScale(task_count=120, driver_counts=(24,), trips_generated=600)


@pytest.fixture(scope="module")
def skewed_instance():
    config = ExperimentConfig(scale=SCALE, working_model=WorkingModel.HITCHHIKING)
    workload = build_workload(config)
    return config, workload.instance_with_drivers(24)


class TestLptRule:
    def test_known_example_packs_greedily(self):
        # Sorted desc: 10->slot0, 9->slot1, 2->slot1 (11? no: min is 9),
        # then alternating by least-loaded slot.
        assert lpt_slot_assignment([10, 9, 2, 2, 2], 2) == [0, 1, 1, 0, 1]

    def test_equal_loads_tie_break_by_position_and_slot(self):
        assert lpt_slot_assignment([5, 5, 5, 5], 2) == [0, 1, 0, 1]

    def test_never_stacks_the_two_hottest_while_a_slot_is_free(self):
        assignment = lpt_slot_assignment([100, 90, 1, 1], 2)
        assert assignment[0] != assignment[1]

    def test_single_slot_and_empty_input(self):
        assert lpt_slot_assignment([3, 1, 2], 1) == [0, 0, 0]
        assert lpt_slot_assignment([], 4) == []

    def test_rejects_zero_slots(self):
        with pytest.raises(ValueError):
            lpt_slot_assignment([1.0], 0)

    def test_makespan_respects_the_list_scheduling_bound(self):
        loads = [13.0, 11.0, 7.0, 5.0, 3.0, 2.0, 2.0]
        slots = 3
        assignment = lpt_slot_assignment(loads, slots)
        slot_loads = [0.0] * slots
        for load, slot in zip(loads, assignment):
            slot_loads[slot] += load
        assert max(slot_loads) <= sum(loads) / slots + max(loads)


class TestCoordinatorPlacement:
    def _fingerprint(self, result):
        return (
            result.solution.assignment(),
            tuple((p.driver_id, p.task_indices, p.profit) for p in result.solution.plans),
            result.report.total_value,
            result.report.per_shard_values,
        )

    def test_placement_does_not_change_the_merge(self, skewed_instance):
        config, instance = skewed_instance
        partitioner = SpatialPartitioner(config.bounding_box, 3, 3)
        coordinator = DistributedCoordinator(partitioner, "greedy", executor="thread")
        fork = coordinator.solve(instance)
        with PersistentWorkerPool(executor="thread", worker_count=2) as pool:
            round_robin = coordinator.solve(instance, pool=pool)
            packed = coordinator.solve(instance, pool=pool, load_report=fork)
        assert self._fingerprint(round_robin) == self._fingerprint(fork)
        assert self._fingerprint(packed) == self._fingerprint(fork)

    def test_lpt_slots_follow_the_prior_report(self, skewed_instance):
        config, instance = skewed_instance
        partitioner = SpatialPartitioner(config.bounding_box, 3, 3)
        coordinator = DistributedCoordinator(partitioner, "greedy", executor="serial")
        prior = coordinator.solve(instance)

        submitted = []
        with PersistentWorkerPool(executor="serial") as pool:
            original = pool.submit

            def recording_submit(slot, fn, /, *args):
                submitted.append(slot)
                return original(slot, fn, *args)

            pool.worker_count = 2  # route the placement math through 2 slots
            pool.submit = recording_submit
            coordinator.solve(instance, pool=pool, load_report=prior)
            pool.worker_count = 1

        plan = prior.plan
        live = [
            position
            for position, shard in enumerate(plan.shards)
            if shard.task_count > 0 and shard.driver_count > 0
        ]
        expected = lpt_slot_assignment(
            [float(plan.shards[position].task_count) for position in live],
            min(2, len(live)),
        )
        assert submitted == expected
        # A skewed city must actually diverge from round-robin placement.
        assert submitted != list(range(len(live)))

    def test_mismatched_report_falls_back_to_current_counts(self, skewed_instance):
        config, instance = skewed_instance
        partitioner = SpatialPartitioner(config.bounding_box, 2, 2)
        coordinator = DistributedCoordinator(partitioner, "greedy", executor="serial")
        stale = ShardLoadReport(
            regions=((config.bounding_box,),), task_counts=(999,)
        )  # one shard; the plan has four
        with PersistentWorkerPool(executor="serial") as pool:
            fresh = coordinator.solve(instance, pool=pool)
            packed = coordinator.solve(instance, pool=pool, load_report=stale)
        assert self._fingerprint(packed) == self._fingerprint(fresh)

    def test_same_count_different_regions_is_not_trusted(self, skewed_instance):
        """A report from a *different* partition with a coincidentally equal
        shard count must fall back to the current shards' own loads, not
        attribute its counts to the wrong shards."""
        config, instance = skewed_instance
        coordinator = DistributedCoordinator(
            SpatialPartitioner(config.bounding_box, 2, 2), "greedy", executor="serial"
        )
        plan = coordinator.solve(instance).plan
        # Four shards, but cut the other way (1x4): same count, other boxes.
        foreign = ShardLoadReport(
            regions=tuple((box,) for box in config.bounding_box.split(1, 4)),
            # Loads that, if trusted positionally, would invert the ordering.
            task_counts=(1, 1, 1, 1000),
        )
        live = [
            position
            for position, shard in enumerate(plan.shards)
            if shard.task_count > 0 and shard.driver_count > 0
        ]
        expected = lpt_slot_assignment(
            [float(plan.shards[position].task_count) for position in live],
            min(2, len(live)),
        )
        submitted = []
        with PersistentWorkerPool(executor="serial") as pool:
            original = pool.submit

            def recording_submit(slot, fn, /, *args):
                submitted.append(slot)
                return original(slot, fn, *args)

            pool.worker_count = 2
            pool.submit = recording_submit
            coordinator.solve(instance, pool=pool, load_report=foreign)
            pool.worker_count = 1
        assert submitted == expected
