"""Stream-lifecycle edge cases: abandonment, worker death, teardown.

The streaming engine's happy path is pinned by ``test_stream.py``; this file
pins the *unhappy* paths the dispatch service leans on:

* an abandoned stream (opened, maybe appended to, never finished) must not
  leak worker-resident ``ShardStreamSession`` state into the persistent
  pool — ``close()`` / the context manager discards it on every error path;
* a worker death mid-stream surfaces as a diagnostic
  ``WorkerPoolBrokenError`` naming the slot (pool level) and the shard
  (stream level), with the whole pool left *closed*, never half-poisoned;
* pool teardown with queued work cancels the backlog instead of draining it
  (the Ctrl-C path must return promptly).
"""

import os
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.distributed import (
    DistributedCoordinator,
    PersistentWorkerPool,
    SpatialPartitioner,
    WorkerPoolBrokenError,
)
from repro.distributed.pool import _SESSIONS, _pool_session_count
from repro.geo import PORTO
from repro.online.batch import BatchConfig, window_batches

from ..conftest import build_random_instance

WINDOW_S = 600.0


@pytest.fixture(scope="module")
def instance():
    return build_random_instance(task_count=40, driver_count=10, seed=21)


@pytest.fixture(scope="module")
def config():
    return BatchConfig(window_s=WINDOW_S)


def open_with_batches(coordinator, instance, config, batches=1):
    session = coordinator.open_stream(
        instance.drivers, instance.cost_model, config=config
    )
    for batch in window_batches(instance.tasks, config.window_s)[:batches]:
        session.append_batch(batch)
    return session


class TestAbandonedStreams:
    """Satellite 1: ``close()`` discards worker-side sessions."""

    def test_close_discards_inproc_sessions(self, instance, config):
        with DistributedCoordinator(
            SpatialPartitioner(PORTO, 2, 2), executor="serial"
        ) as coordinator:
            before = len(_SESSIONS)
            session = open_with_batches(coordinator, instance, config)
            assert len(_SESSIONS) > before  # sessions are resident
            session.close()
            assert len(_SESSIONS) == before
            assert session.closed

    def test_context_manager_discards_on_error(self, instance, config):
        before = len(_SESSIONS)
        with DistributedCoordinator(
            SpatialPartitioner(PORTO, 2, 2), executor="serial"
        ) as coordinator:
            with pytest.raises(RuntimeError, match="boom"):
                with coordinator.open_stream(
                    instance.drivers, instance.cost_model, config=config
                ) as session:
                    session.append_batch(instance.tasks[:4])
                    raise RuntimeError("boom")
        assert len(_SESSIONS) == before
        assert session.closed

    def test_close_is_idempotent_and_finish_after_close_raises(self, instance, config):
        with DistributedCoordinator(
            SpatialPartitioner(PORTO, 1, 1), executor="serial"
        ) as coordinator:
            session = open_with_batches(coordinator, instance, config)
            session.close()
            session.close()
            with pytest.raises(RuntimeError):
                session.finish()
            with pytest.raises(RuntimeError):
                session.append_batch(instance.tasks[:1])

    def test_close_after_finish_is_noop(self, instance, config):
        with DistributedCoordinator(
            SpatialPartitioner(PORTO, 1, 1), executor="serial"
        ) as coordinator:
            with coordinator.open_stream(
                instance.drivers, instance.cost_model, config=config
            ) as session:
                for batch in window_batches(instance.tasks, config.window_s):
                    session.append_batch(batch)
                result = session.finish()
        assert result.report.batch_count > 0
        assert len(_SESSIONS) == 0

    def test_abandoned_stream_then_new_stream_on_same_pool(self, instance, config):
        """The pool survives an abandoned stream, and the next stream on the
        same warm workers is unaffected (bit-identical to a fresh solve)."""
        from .test_stream import stream_fingerprint

        with DistributedCoordinator(
            SpatialPartitioner(PORTO, 2, 2), executor="process", max_workers=2
        ) as coordinator:
            abandoned = open_with_batches(coordinator, instance, config)
            pool = coordinator._stream_pool
            abandoned.close()
            # Worker-side registries really are empty again on every slot.
            for slot in range(pool.worker_count):
                assert pool.submit(slot, _pool_session_count).result() == 0
            fresh = coordinator.solve_stream(instance, config=config)
            assert coordinator._stream_pool is pool  # same warm pool
        with DistributedCoordinator(
            SpatialPartitioner(PORTO, 2, 2), executor="serial"
        ) as reference:
            expected = reference.solve_stream(instance, config=config)
        assert stream_fingerprint(fresh) == stream_fingerprint(expected)

    def test_worker_registry_empty_after_abandon_on_thread_pool(self, instance, config):
        with DistributedCoordinator(
            SpatialPartitioner(PORTO, 2, 2), executor="thread", max_workers=2
        ) as coordinator:
            session = open_with_batches(coordinator, instance, config)
            pool = coordinator._stream_pool
            session.close()
            # Threads share one registry: barrier every slot (per-slot
            # submission order puts the barrier after the discards), then
            # the shared in-process count must be back to zero.
            for slot in range(pool.worker_count):
                pool.submit(slot, int).result()
            assert pool.submit(0, _pool_session_count).result() == 0

    def test_pool_close_with_stream_still_open(self, instance, config):
        """Closing the pool under a live stream: the stream's own close()
        must still be safe (nothing to discard into a dead pool)."""
        coordinator = DistributedCoordinator(
            SpatialPartitioner(PORTO, 2, 2), executor="thread", max_workers=2
        )
        session = open_with_batches(coordinator, instance, config)
        coordinator.close()  # pool gone, stream still open
        session.close()  # must not raise
        assert session.closed
        with pytest.raises(RuntimeError):
            session.append_batch(instance.tasks[:1])


class TestBrokenWorkers:
    """Satellite 2: worker death -> diagnostic error, pool safely closed."""

    def test_pool_submit_after_death_names_slot(self):
        with PersistentWorkerPool(executor="process", worker_count=2) as pool:
            doomed = pool.submit(1, os._exit, 13)
            with pytest.raises(WorkerPoolBrokenError, match="slot 1/2"):
                doomed.result()
            assert pool.broken
            # The whole pool is closed — the surviving slot refuses too,
            # with the same diagnostic (not a bare "pool is closed").
            with pytest.raises(WorkerPoolBrokenError, match="died mid-call"):
                pool.submit(0, os.getpid)

    def test_stream_append_after_worker_death_names_shard(self, instance, config):
        with DistributedCoordinator(
            SpatialPartitioner(PORTO, 1, 1), executor="process", max_workers=1
        ) as coordinator:
            session = open_with_batches(coordinator, instance, config)
            pool = coordinator._stream_pool
            # Kill the worker the shard is pinned to, mid-stream.
            pool.submit(0, os._exit, 1)
            batches = window_batches(instance.tasks, config.window_s)
            with pytest.raises(WorkerPoolBrokenError, match="lost shard"):
                session.append_batch(batches[1])
                session.finish()
            assert session.closed
            assert pool.broken
            # A fresh stream on the coordinator reports the breakage too
            # rather than hanging or re-forking silently.
            with pytest.raises(WorkerPoolBrokenError):
                coordinator.solve_stream(instance, config=config, pool=pool)

    def test_serial_and_thread_pools_never_break(self, instance, config):
        """In-process policies have no worker to lose; a failing call
        surfaces as its own exception without closing the pool."""
        with PersistentWorkerPool(executor="thread", worker_count=1) as pool:
            future = pool.submit(0, int, "not-a-number")
            with pytest.raises(ValueError):
                future.result()
            assert not pool.broken
            assert pool.submit(0, os.getpid).result() == os.getpid()


#: Script for the SIGINT regression: streams over shm, prints the shipper's
#: segment prefix, interrupts itself mid-stream.  The parent then scans
#: /dev/shm — the context managers' unwind must have unlinked every segment.
_SIGINT_SCRIPT = """
import os, signal
from repro.distributed import DistributedCoordinator, SpatialPartitioner
from repro.geo import PORTO, GeoPoint
from repro.market import Driver, Task
from repro.online.batch import BatchConfig

drivers = [
    Driver(f"d{i}", GeoPoint(41.15, -8.62), GeoPoint(41.16, -8.60), 0.0, 7200.0)
    for i in range(4)
]
tasks = [
    Task(f"t{i}", 0.0, GeoPoint(41.15, -8.61), GeoPoint(41.155, -8.605), 600.0, 1800.0, price=5.0)
    for i in range(8)
]
try:
    with DistributedCoordinator(
        SpatialPartitioner(PORTO, 1, 1), executor="process", max_workers=1,
        transport="shm",
    ) as coordinator:
        with coordinator.open_stream(drivers, config=BatchConfig(window_s=600.0)) as session:
            session.append_batch(tasks)
            print("PREFIX", coordinator.stream_pool().shipper.segment_prefix, flush=True)
            os.kill(os.getpid(), signal.SIGINT)
except KeyboardInterrupt:
    pass
print("CLEAN-EXIT", flush=True)
"""


#: Script for the resource-tracker regression: a fresh interpreter (so no
#: tracker exists before the pool forks its workers) streams over shm and
#: exits cleanly.  Workers attach segments untracked; if they registered
#: with their own resource trackers instead, this exact flow ends with
#: "leaked shared_memory objects" warnings on stderr at shutdown.
_TRACKER_SCRIPT = """
from repro.distributed import DistributedCoordinator, SpatialPartitioner
from repro.geo import PORTO, GeoPoint
from repro.market import Driver, Task
from repro.online.batch import BatchConfig

drivers = [
    Driver(f"d{i}", GeoPoint(41.15, -8.62), GeoPoint(41.16, -8.60), 0.0, 7200.0)
    for i in range(6)
]
tasks = [
    Task(f"t{i}", 60.0 * i, GeoPoint(41.15, -8.61), GeoPoint(41.155, -8.605),
         60.0 * i + 600.0, 60.0 * i + 1800.0, price=5.0)
    for i in range(40)
]
from repro.market import MarketInstance

instance = MarketInstance.create(drivers=tuple(drivers), tasks=tuple(tasks))
with DistributedCoordinator(
    SpatialPartitioner(PORTO, 2, 1), executor="process", max_workers=2,
    transport="shm",
) as coordinator:
    result = coordinator.solve_stream(instance, config=BatchConfig(window_s=600.0))
    assert result.report.shm_bytes > 0, "stream did not exercise the shm path"
    print("PREFIX", coordinator.stream_pool().shipper.segment_prefix, flush=True)
print("CLEAN-EXIT", flush=True)
"""


class TestShmSegmentLifecycle:
    """Satellite 4 of the transport PR: no teardown path leaks /dev/shm
    segments — not close(), not a worker death, not a SIGINT."""

    @staticmethod
    def _entries(prefix):
        from .test_transport import shm_entries

        return shm_entries(prefix)

    def test_close_unlinks_all_segments(self, instance, config):
        with DistributedCoordinator(
            SpatialPartitioner(PORTO, 2, 2), executor="process", max_workers=2,
            transport="shm",
        ) as coordinator:
            coordinator.solve_stream(instance, config=config)
            pool = coordinator._stream_pool
            prefix = pool.shipper.segment_prefix
            # Steady state keeps recycled segments alive on the free list...
            assert pool.stats.segments_created > 0
        # ...and pool teardown (the coordinator's __exit__) unlinks them all.
        assert self._entries(prefix) == []

    def test_worker_death_unlinks_all_segments(self, instance, config):
        with DistributedCoordinator(
            SpatialPartitioner(PORTO, 1, 1), executor="process", max_workers=1,
            transport="shm",
        ) as coordinator:
            session = open_with_batches(coordinator, instance, config)
            pool = coordinator._stream_pool
            prefix = pool.shipper.segment_prefix
            pool.submit(0, os._exit, 1)
            batches = window_batches(instance.tasks, config.window_s)
            with pytest.raises(WorkerPoolBrokenError, match="lost shard"):
                session.append_batch(batches[1])
                session.finish()
            # The broken-worker shutdown already funnelled through
            # pool.close(), which closes the shipper: nothing left behind
            # even before the coordinator context exits.
            assert pool.broken
            assert self._entries(prefix) == []
        assert self._entries(prefix) == []

    @staticmethod
    def _run_script(script):
        repo_root = Path(__file__).resolve().parents[2]
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            [str(repo_root / "src"), env.get("PYTHONPATH", "")]
        )
        return subprocess.run(
            [sys.executable, "-c", script],
            capture_output=True, text=True, timeout=120, env=env,
        )

    def test_sigint_mid_stream_unlinks_all_segments(self):
        proc = self._run_script(_SIGINT_SCRIPT)
        assert "CLEAN-EXIT" in proc.stdout, proc.stderr
        prefix = next(
            line.split()[1] for line in proc.stdout.splitlines() if line.startswith("PREFIX")
        )
        assert prefix.startswith("repro-shm-")
        assert self._entries(prefix) == []

    def test_worker_attaches_make_no_resource_tracker_noise(self):
        """Readers attach segments outside the resource tracker.  If they
        registered instead, every worker would grow a tracker that warns
        about (and re-unlinks) the shipper's segments at exit — exactly what
        a plain ``SharedMemory(name=...)`` attach does before Python 3.13."""
        proc = self._run_script(_TRACKER_SCRIPT)
        assert proc.returncode == 0, proc.stderr
        assert "CLEAN-EXIT" in proc.stdout, proc.stderr
        assert "resource_tracker" not in proc.stderr, proc.stderr
        assert "leaked shared_memory" not in proc.stderr, proc.stderr
        prefix = next(
            line.split()[1] for line in proc.stdout.splitlines() if line.startswith("PREFIX")
        )
        assert self._entries(prefix) == []


class TestTeardownCancelsBacklog:
    """Satellite 3: teardown cancels queued work instead of draining it."""

    def test_close_cancels_queued_not_started_work(self):
        pool = PersistentWorkerPool(executor="thread", worker_count=1)
        try:
            futures = [pool.submit(0, time.sleep, 0.3) for _ in range(5)]
            start = time.perf_counter()
        finally:
            pool.close()
        elapsed = time.perf_counter() - start
        # Draining the backlog would take ~1.5s; cancelling waits only for
        # the in-flight call (one sleep plus slack).
        assert elapsed < 1.0, f"close() drained the backlog ({elapsed:.2f}s)"
        states = [future.raw.cancelled() for future in futures]
        assert any(states), "no queued future was cancelled"

    def test_close_can_still_drain_when_asked(self):
        pool = PersistentWorkerPool(executor="thread", worker_count=1)
        futures = [pool.submit(0, time.sleep, 0.05) for _ in range(3)]
        pool.close(cancel_pending=False)
        assert all(future.result() is None for future in futures)
