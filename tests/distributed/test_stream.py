"""Stream==replay parity for the persistent shard pool.

The streaming coordinator promises that ``solve_stream()`` — per-shard
streaming sessions on a persistent worker pool, fed incremental
``ShardPayloadDelta``s — is **bit-identical** to a serial per-shard
``BatchedSimulator.run_stream`` replay of the same batch schedule, under
every executor policy.  Today that parity is pinned here, including the
``process`` executor (the one that actually crosses a pickle boundary), the
pool-reuse path and the skew-aware rebalance's determinism contract
(rebalanced stream == from-start stream over the final regions).
"""

import pytest

from repro.distributed import (
    DistributedCoordinator,
    RebalancePolicy,
    SpatialPartitioner,
    ZonePartition,
)
from repro.geo import PORTO
from repro.market import StreamingMarketInstance
from repro.online.batch import BatchConfig, BatchedSimulator, window_batches

from ..conftest import build_random_instance

WINDOW_S = 600.0
EXECUTORS = ("serial", "thread", "process")


@pytest.fixture(scope="module")
def instance():
    return build_random_instance(task_count=60, driver_count=15, seed=37)


@pytest.fixture(scope="module")
def config():
    return BatchConfig(window_s=WINDOW_S)


def stream_fingerprint(result):
    """Everything that must be identical across executors."""
    return (
        result.solution.assignment(),
        tuple((p.driver_id, p.task_indices, p.profit) for p in result.solution.plans),
        result.rejected_tasks,
        result.report.total_value,
        result.report.served_count,
        result.report.per_shard_task_counts,
    )


def serial_replay_reference(instance, rows, cols, config):
    """The contract's reference: route the same batch schedule to per-shard
    ``run_stream`` replays in-process and merge the records."""
    router = ZonePartition.from_grid(PORTO, rows, cols)
    driver_of = router.route(d.source for d in instance.drivers)
    shard_drivers = {
        s: tuple(
            d for d, a in zip(instance.drivers, driver_of) if int(a) == s
        )
        for s in range(router.shard_count)
    }
    batches = window_batches(instance.tasks, config.window_s)
    shard_batches = {s: [] for s in range(router.shard_count)}
    for batch in batches:
        owners = router.route(t.source for t in batch)
        for s in range(router.shard_count):
            members = [t for t, a in zip(batch, owners) if int(a) == s]
            if members:
                shard_batches[s].append(members)

    profits = {}
    assignment = {}
    for s in range(router.shard_count):
        if not shard_drivers[s]:
            continue
        stream = StreamingMarketInstance(shard_drivers[s], instance.cost_model)
        outcome = BatchedSimulator(stream, config).run_stream(shard_batches[s])
        for record in outcome.records:
            profits[record.driver_id] = record.profit
            if record.task_indices:
                # Translate shard-local indices to the shard's task ids.
                assignment[record.driver_id] = tuple(
                    stream.tasks[m].task_id for m in record.task_indices
                )
    return profits, assignment


class TestStreamReplayParity:
    @pytest.mark.parametrize("executor", EXECUTORS)
    def test_solve_stream_matches_serial_per_shard_replay(self, instance, config, executor):
        """The headline contract, pinned per executor — including process."""
        with DistributedCoordinator(
            SpatialPartitioner(PORTO, 2, 2), executor=executor, max_workers=2
        ) as coordinator:
            result = coordinator.solve_stream(instance, config=config)
        ref_profits, ref_assignment = serial_replay_reference(instance, 2, 2, config)

        for plan in result.solution.plans:
            assert plan.profit == ref_profits.get(plan.driver_id, 0.0), plan.driver_id
        streamed_assignment = {
            driver_id: tuple(
                result.solution.instance.tasks[m].task_id for m in path
            )
            for driver_id, path in result.solution.assignment().items()
        }
        assert streamed_assignment == ref_assignment

    def test_executor_fingerprints_identical(self, instance, config):
        partitioner = SpatialPartitioner(PORTO, 2, 2)
        results = {}
        for executor in EXECUTORS:
            with DistributedCoordinator(
                partitioner, executor=executor, max_workers=2
            ) as coordinator:
                results[executor] = coordinator.solve_stream(instance, config=config)
        serial = stream_fingerprint(results["serial"])
        assert stream_fingerprint(results["thread"]) == serial
        assert stream_fingerprint(results["process"]) == serial

    def test_single_shard_equals_plain_stream(self, instance, config):
        """A 1x1 grid is exactly an unsharded ``run_stream`` replay."""
        with DistributedCoordinator(
            SpatialPartitioner(PORTO, 1, 1), executor="serial"
        ) as coordinator:
            result = coordinator.solve_stream(instance, config=config)
        stream = StreamingMarketInstance(instance.drivers, instance.cost_model)
        outcome = BatchedSimulator(stream, config).run_stream(
            window_batches(instance.tasks, config.window_s)
        )
        assert result.solution.assignment() == outcome.assignment()
        assert [p.profit for p in result.solution.plans] == [
            r.profit for r in outcome.records
        ]
        assert result.rejected_tasks == outcome.rejected_tasks

    def test_explicit_batches_match_default_windowing(self, instance, config):
        partitioner = SpatialPartitioner(PORTO, 2, 2)
        with DistributedCoordinator(partitioner, executor="serial") as coordinator:
            by_default = coordinator.solve_stream(instance, config=config)
            by_batches = coordinator.solve_stream(
                instance,
                window_batches(instance.tasks, config.window_s),
                config=config,
            )
        assert stream_fingerprint(by_default) == stream_fingerprint(by_batches)

    def test_unpublishable_tasks_stay_in_the_streamed_instance(self, config):
        """The default schedule must carry non-publishable tasks too, so the
        streamed solution shares metric denominators with a full replay."""
        from dataclasses import replace

        from repro.online.batch import run_batched

        base = build_random_instance(task_count=40, driver_count=10, seed=11)
        # Price a few tasks above their WTP so they fail individual rationality.
        tasks = tuple(
            replace(task, wtp=task.price / 2.0) if i % 7 == 0 else task
            for i, task in enumerate(base.tasks)
        )
        instance = base.with_tasks(tasks)
        assert any(not t.is_publishable for t in instance.tasks)

        replay = run_batched(instance, config=config)
        with DistributedCoordinator(
            SpatialPartitioner(PORTO, 1, 1), executor="serial"
        ) as coordinator:
            streamed = coordinator.solve_stream(instance, config=config)
        assert streamed.solution.instance.task_count == instance.task_count
        assert streamed.solution.total_value == replay.total_value
        assert streamed.solution.served_count == replay.served_count
        assert streamed.solution.serve_rate == replay.serve_rate

    def test_driverless_shards_reject_their_orders(self, instance, config):
        # An 8x8 grid over 15 drivers leaves most cells driverless.
        partitioner = SpatialPartitioner(PORTO, 8, 8)
        with DistributedCoordinator(partitioner, executor="serial") as serial:
            a = serial.solve_stream(instance, config=config)
        with DistributedCoordinator(
            partitioner, executor="process", max_workers=2
        ) as pooled:
            b = pooled.solve_stream(instance, config=config)
        assert stream_fingerprint(a) == stream_fingerprint(b)
        assert a.report.shard_count == 64
        assert len(a.rejected_tasks) > 0


class TestPersistentPoolReuse:
    def test_consecutive_streams_on_one_pool_are_identical(self, instance, config):
        """The amortisation path: one pool, many streams, no cross-talk."""
        with DistributedCoordinator(
            SpatialPartitioner(PORTO, 2, 2), executor="process", max_workers=2
        ) as coordinator:
            first = coordinator.solve_stream(instance, config=config)
            pool = coordinator._stream_pool
            second = coordinator.solve_stream(instance, config=config)
            assert coordinator._stream_pool is pool  # same live pool, no refork
        assert stream_fingerprint(first) == stream_fingerprint(second)

    def test_incremental_append_batch_api(self, instance, config):
        with DistributedCoordinator(
            SpatialPartitioner(PORTO, 2, 2), executor="serial"
        ) as coordinator:
            session = coordinator.open_stream(
                instance.drivers, instance.cost_model, config=config
            )
            for batch in window_batches(instance.tasks, config.window_s):
                session.append_batch(batch)
            incremental = session.finish()
            whole = coordinator.solve_stream(instance, config=config)
        assert stream_fingerprint(incremental) == stream_fingerprint(whole)

    def test_finish_twice_raises(self, instance, config):
        with DistributedCoordinator(
            SpatialPartitioner(PORTO, 1, 1), executor="serial"
        ) as coordinator:
            session = coordinator.open_stream(instance.drivers, instance.cost_model)
            session.finish()
            with pytest.raises(RuntimeError):
                session.finish()
            with pytest.raises(RuntimeError):
                session.append_batch(instance.tasks[:1])

    def test_out_of_order_batches_raise(self, instance, config):
        batches = window_batches(instance.tasks, config.window_s)
        assert len(batches) >= 3
        with DistributedCoordinator(
            SpatialPartitioner(PORTO, 1, 1), executor="serial"
        ) as coordinator:
            session = coordinator.open_stream(
                instance.drivers, instance.cost_model, config=config
            )
            session.append_batch(batches[-1])
            with pytest.raises(ValueError):
                session.append_batch(batches[0])
                session.finish()


class TestSkewAwareRebalance:
    def test_split_fires_and_matches_from_start_partition(self, instance, config):
        """Determinism contract: rebalanced stream == from-start stream over
        the final (post-rebalance) regions."""
        policy = RebalancePolicy(
            check_every_batches=1, hot_factor=1.2, min_split_tasks=4
        )
        with DistributedCoordinator(
            SpatialPartitioner(PORTO, 2, 2), executor="serial"
        ) as coordinator:
            rebalanced = coordinator.solve_stream(
                instance, config=config, rebalance=policy
            )
            assert rebalanced.report.rebalance_count > 0
            assert rebalanced.report.shard_count > 4
            from_start = coordinator.solve_stream(
                instance, config=config, regions=rebalanced.regions
            )
        assert stream_fingerprint(rebalanced) == stream_fingerprint(from_start)

    def test_merge_fires_for_cold_shards(self, instance, config):
        # A fine grid leaves many near-empty shards; an aggressive cold
        # factor forces merges (splits disabled via a huge min_split_tasks).
        policy = RebalancePolicy(
            check_every_batches=1,
            hot_factor=1e9,
            cold_factor=2.0,
            min_split_tasks=10**9,
        )
        with DistributedCoordinator(
            SpatialPartitioner(PORTO, 3, 3), executor="serial"
        ) as coordinator:
            merged = coordinator.solve_stream(instance, config=config, rebalance=policy)
            assert merged.report.rebalance_count > 0
            assert merged.report.shard_count < 9
            from_start = coordinator.solve_stream(
                instance, config=config, regions=merged.regions
            )
        assert stream_fingerprint(merged) == stream_fingerprint(from_start)

    def test_rebalance_on_process_pool(self, instance, config):
        """Split/merge replay works across the pickle boundary too."""
        policy = RebalancePolicy(
            check_every_batches=2, hot_factor=1.5, min_split_tasks=8
        )
        with DistributedCoordinator(
            SpatialPartitioner(PORTO, 2, 2), executor="serial"
        ) as serial:
            a = serial.solve_stream(instance, config=config, rebalance=policy)
        with DistributedCoordinator(
            SpatialPartitioner(PORTO, 2, 2), executor="process", max_workers=2
        ) as pooled:
            b = pooled.solve_stream(instance, config=config, rebalance=policy)
        assert a.report.rebalance_count == b.report.rebalance_count
        assert stream_fingerprint(a) == stream_fingerprint(b)
