"""Parity contract 19: the flight recorder never changes a dispatch outcome.

Tracing only reads clocks and appends to span buffers — the merged solution,
per-plan profits, rejected tasks and every report column except the trace
ones must be bit-identical between a traced and an untraced run, under every
executor policy and on the shm transport.  The disabled path must also stay
a true no-op (module-level ``span()`` returns a shared null object).
"""

import pytest

from repro.distributed import DistributedCoordinator, SpatialPartitioner
from repro.geo import PORTO
from repro.obs import trace as obs_trace
from repro.online.batch import BatchConfig

from ..conftest import build_random_instance

EXECUTORS = ("serial", "thread", "process")
WINDOW_S = 600.0


@pytest.fixture(scope="module")
def instance():
    return build_random_instance(task_count=60, driver_count=15, seed=41)


@pytest.fixture(autouse=True)
def _no_leaked_recorder():
    obs_trace.disable_tracing()
    yield
    obs_trace.disable_tracing()


def stream_fingerprint(result):
    """Everything the contract pins (excludes the trace-only report fields)."""
    return (
        result.solution.assignment(),
        tuple((p.driver_id, p.task_indices, p.profit) for p in result.solution.plans),
        result.rejected_tasks,
        result.report.total_value,
        result.report.served_count,
        result.report.per_shard_task_counts,
    )


def solve_fingerprint(result):
    return (
        result.solution.assignment(),
        tuple((p.driver_id, p.task_indices, p.profit) for p in result.solution.plans),
        result.report.total_value,
        result.report.served_count,
    )


def _run_stream(instance, executor, transport="pickle", traced=False):
    recorder = obs_trace.enable_tracing() if traced else None
    try:
        with DistributedCoordinator(
            SpatialPartitioner(PORTO, 2, 2),
            executor=executor,
            transport=transport,
        ) as coordinator:
            result = coordinator.solve_stream(
                instance, config=BatchConfig(window_s=WINDOW_S)
            )
    finally:
        obs_trace.disable_tracing()
    return result, recorder


@pytest.mark.parametrize("executor", EXECUTORS)
def test_traced_stream_is_bit_identical(instance, executor):
    untraced, _ = _run_stream(instance, executor)
    traced, recorder = _run_stream(instance, executor, traced=True)
    assert stream_fingerprint(traced) == stream_fingerprint(untraced)
    assert len(recorder.export()) > 0


@pytest.mark.parametrize("executor", EXECUTORS)
def test_traced_stream_has_worker_spans_for_every_shard(instance, executor):
    result, recorder = _run_stream(instance, executor, traced=True)
    spans = recorder.export()
    shard_roots = [s for s in spans if s[2] == "shard_stream"]
    # One shard_stream root per opened shard session.
    assert len(shard_roots) == len(result.report.per_shard_task_counts)
    shards_seen = {
        value for s in shard_roots for key, value in s[5] if key == "shard"
    }
    assert len(shards_seen) == len(shard_roots)  # distinct shard ids
    # Every shard recorded hot-path leaf spans, stitched under its root.
    names = {s[2] for s in spans}
    assert {"stream", "append", "candidates", "merge"} <= names


def test_traced_stream_report_carries_phase_breakdown(instance):
    result, _ = _run_stream(instance, "thread", traced=True)
    breakdown = dict(result.report.phase_breakdown)
    assert set(breakdown) == set(obs_trace.PHASE_NAMES)
    assert breakdown["candidates"] > 0.0
    assert result.report.trace_span_count > 0
    assert result.report.phase_seconds == breakdown


def test_untraced_stream_report_has_empty_trace_fields(instance):
    result, _ = _run_stream(instance, "thread")
    assert result.report.phase_breakdown == ()
    assert result.report.trace_span_count == 0


def test_traced_shm_transport_is_bit_identical(instance):
    untraced, _ = _run_stream(instance, "process", transport="shm")
    traced, recorder = _run_stream(instance, "process", transport="shm", traced=True)
    assert stream_fingerprint(traced) == stream_fingerprint(untraced)
    names = {s[2] for s in recorder.export()}
    assert "transport:ship_delta" in names
    assert "transport:attach" in names


def _run_solve(instance, executor, solver="greedy", traced=False):
    recorder = obs_trace.enable_tracing() if traced else None
    try:
        with DistributedCoordinator(
            SpatialPartitioner(PORTO, 2, 2),
            solver_name=solver,
            executor=executor,
        ) as coordinator:
            result = coordinator.solve(instance)
    finally:
        obs_trace.disable_tracing()
    return result, recorder


@pytest.mark.parametrize("executor", EXECUTORS)
def test_traced_offline_solve_is_bit_identical(instance, executor):
    untraced, _ = _run_solve(instance, executor)
    traced, recorder = _run_solve(instance, executor, traced=True)
    assert solve_fingerprint(traced) == solve_fingerprint(untraced)
    names = {s[2] for s in recorder.export()}
    assert "solve" in names and "merge" in names
    assert "shard_solve" in names  # worker-side roots were adopted


def test_traced_lp_solve_records_exact_tier_spans(instance):
    traced, recorder = _run_solve(instance, "serial", solver="lp", traced=True)
    names = {s[2] for s in recorder.export()}
    assert "lp" in names
    breakdown = dict(traced.report.phase_breakdown)
    assert breakdown["lp"] > 0.0


def test_disabled_tracing_records_nothing(instance):
    result, _ = _run_stream(instance, "serial")
    assert obs_trace.active_recorder() is None
    assert result.report.trace_span_count == 0
