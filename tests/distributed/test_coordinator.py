"""Tests for the distributed coordinator and shard workers."""

import pytest

from repro.distributed import (
    DistributedCoordinator,
    ShardWorkRequest,
    SpatialPartitioner,
    solve_shard,
)
from repro.geo import PORTO
from repro.offline import greedy_assignment

from ..conftest import build_random_instance


@pytest.fixture(scope="module")
def instance():
    return build_random_instance(task_count=60, driver_count=15, seed=37)


class TestSolveShard:
    def test_unknown_solver_rejected(self, instance):
        plan = SpatialPartitioner(PORTO, 1, 1).partition(instance)
        request = ShardWorkRequest(0, 1, 1, solver_name="simplex")
        with pytest.raises(ValueError):
            solve_shard(plan.shards[0], request)

    @pytest.mark.parametrize("solver", ["greedy", "nearest", "maxMargin"])
    def test_shard_result_consistency(self, instance, solver):
        plan = SpatialPartitioner(PORTO, 2, 2).partition(instance)
        shard = max(plan.shards, key=lambda s: s.task_count)
        request = ShardWorkRequest(shard.spec.shard_id, shard.driver_count, shard.task_count, solver)
        result = solve_shard(shard, request)
        assert result.solver_name == solver
        assert result.served_count == len({m for path in result.assignment.values() for m in path})
        assert set(result.driver_profits) == set(result.assignment)
        assert result.total_value == pytest.approx(sum(result.driver_profits.values()), rel=1e-6, abs=1e-6)
        assert result.elapsed_s >= 0.0

    def test_empty_shard(self, instance):
        plan = SpatialPartitioner(PORTO, 8, 8).partition(instance)
        empty = next(s for s in plan.shards if s.task_count == 0 or s.driver_count == 0)
        request = ShardWorkRequest(empty.spec.shard_id, empty.driver_count, empty.task_count, "greedy")
        result = solve_shard(empty, request)
        assert result.assignment == {}
        assert result.total_value == 0.0


class TestCoordinator:
    def test_invalid_solver_name(self):
        with pytest.raises(ValueError):
            DistributedCoordinator(SpatialPartitioner(PORTO, 1, 1), solver_name="cplex")

    def test_single_shard_matches_unsharded_greedy(self, instance):
        coordinator = DistributedCoordinator(SpatialPartitioner(PORTO, 1, 1), "greedy")
        result = coordinator.solve(instance)
        expected = greedy_assignment(instance)
        assert result.solution.total_value == pytest.approx(expected.total_value, rel=1e-9)
        assert result.report.shard_count == 1
        result.solution.validate()

    def test_sharded_solution_is_feasible_and_conflict_free(self, instance):
        coordinator = DistributedCoordinator(SpatialPartitioner(PORTO, 3, 3), "greedy")
        result = coordinator.solve(instance)
        result.solution.validate()
        assert result.report.shard_count == 9
        assert result.report.total_value == pytest.approx(result.solution.total_value)
        assert result.report.served_count == result.solution.served_count

    def test_sharding_never_beats_global_greedy_by_much(self, instance):
        """Sharding removes cross-shard chains; it should not create value out
        of thin air (both solve the same objective with the same algorithm)."""
        global_value = greedy_assignment(instance).total_value
        sharded = DistributedCoordinator(SpatialPartitioner(PORTO, 3, 3), "greedy").solve(instance)
        assert sharded.solution.total_value <= global_value * 1.2 + 1e-6

    def test_parallel_mode_matches_sequential(self, instance):
        partitioner = SpatialPartitioner(PORTO, 2, 2)
        sequential = DistributedCoordinator(partitioner, "greedy", parallel=False).solve(instance)
        parallel = DistributedCoordinator(partitioner, "greedy", parallel=True, max_workers=4).solve(
            instance
        )
        assert parallel.solution.assignment() == sequential.solution.assignment()

    def test_online_solver_merging(self, instance):
        coordinator = DistributedCoordinator(SpatialPartitioner(PORTO, 2, 2), "maxMargin")
        result = coordinator.solve(instance)
        # Online shard plans carry simulator-computed profits.
        assert result.solution.total_value == pytest.approx(
            sum(r for r in result.report.per_shard_values), rel=1e-6
        )
        served = [m for plan in result.solution.plans for m in plan.task_indices]
        assert len(served) == len(set(served))

    def test_report_speedup_metric(self, instance):
        result = DistributedCoordinator(SpatialPartitioner(PORTO, 2, 2), "greedy").solve(instance)
        assert result.report.slowest_shard_s >= 0.0
        assert result.report.critical_path_speedup >= 1.0 or result.report.slowest_shard_s == 0.0
