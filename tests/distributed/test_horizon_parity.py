"""Parity contract 18: rolling-horizon dispatch across the distributed stack.

Horizon dispatch is a per-shard deterministic function of (fleet, config,
observed arrivals), and the config rides the existing ``_pool_open`` wire, so
it must inherit every parity guarantee of the myopic stream:

* bit-identical merged solutions across the serial / thread / process pool
  policies (the process one crosses a real pickle boundary);
* provided warm pool == coordinator-owned pool;
* ``horizon=1`` degrades exactly to the myopic streamed dispatch;
* a flat time-indexed travel model reproduces the plain model's distributed
  stream bit for bit, and a genuinely time-varying model keeps executor
  parity.
"""

import pytest

from repro.distributed import (
    DistributedCoordinator,
    PersistentWorkerPool,
    SpatialPartitioner,
)
from repro.geo import PORTO, TimeVaryingTravelModel
from repro.market.cost import MarketCostModel
from repro.market.instance import MarketInstance
from repro.online.batch import BatchConfig

from ..conftest import build_random_instance

WINDOW_S = 600.0
EXECUTORS = ("serial", "thread", "process")
GRID_ROWS, GRID_COLS = 2, 2

HORIZON_CONFIG = BatchConfig(window_s=WINDOW_S, horizon=8, overlap=2)


@pytest.fixture(scope="module")
def instance():
    return build_random_instance(task_count=60, driver_count=15, seed=41)


@pytest.fixture(scope="module")
def time_varying_instance(instance):
    publishable = [t for t in instance.tasks if t.is_publishable]
    origin = min(t.publish_ts for t in publishable)
    span = max(t.start_deadline_ts for t in instance.tasks) - origin
    varying = TimeVaryingTravelModel(
        base=instance.cost_model.travel_model,
        window_s=max(span / 4.0, 1.0),
        speed_factors=(1.0, 0.7, 1.2, 1.0),
        cost_factors=(1.0, 1.1, 1.0, 1.0),
        origin_ts=origin,
    )
    return MarketInstance.create(
        drivers=instance.drivers,
        tasks=instance.tasks,
        cost_model=MarketCostModel(varying),
    )


def coordinator(executor="serial"):
    return DistributedCoordinator(
        SpatialPartitioner(PORTO, GRID_ROWS, GRID_COLS), executor=executor
    )


def stream_fingerprint(result):
    return (
        result.solution.assignment(),
        tuple((p.driver_id, p.task_indices, p.profit) for p in result.solution.plans),
        result.rejected_tasks,
        result.report.total_value,
        result.report.wait_total_s,
    )


def solve(instance, config, executor="serial", pool=None):
    return coordinator(executor).solve_stream(instance, config=config, pool=pool)


class TestExecutorParity:
    def test_horizon_stream_identical_across_executors(self, instance):
        prints = []
        for executor in EXECUTORS:
            with PersistentWorkerPool(executor=executor, worker_count=2) as pool:
                result = solve(instance, HORIZON_CONFIG, executor, pool)
            prints.append(stream_fingerprint(result))
        assert prints[0] == prints[1] == prints[2]

    def test_provided_pool_equals_own_pool(self, instance):
        with PersistentWorkerPool(executor="process", worker_count=2) as pool:
            warm = solve(instance, HORIZON_CONFIG, "process", pool)
        own = solve(instance, HORIZON_CONFIG, "process")
        assert stream_fingerprint(warm) == stream_fingerprint(own)

    def test_time_varying_model_keeps_executor_parity(self, time_varying_instance):
        prints = []
        for executor in EXECUTORS:
            with PersistentWorkerPool(executor=executor, worker_count=2) as pool:
                result = solve(
                    time_varying_instance, HORIZON_CONFIG, executor, pool
                )
            prints.append(stream_fingerprint(result))
        assert prints[0] == prints[1] == prints[2]


class TestDegradation:
    def test_horizon_one_equals_myopic_stream(self, instance):
        myopic = solve(instance, BatchConfig(window_s=WINDOW_S))
        degraded = solve(instance, BatchConfig(window_s=WINDOW_S, horizon=1))
        assert stream_fingerprint(degraded) == stream_fingerprint(myopic)

    def test_flat_profile_equals_plain_model_stream(self, instance):
        flat = MarketInstance.create(
            drivers=instance.drivers,
            tasks=instance.tasks,
            cost_model=MarketCostModel(
                TimeVaryingTravelModel(base=instance.cost_model.travel_model)
            ),
        )
        plain = solve(instance, HORIZON_CONFIG, "process")
        flat_result = solve(flat, HORIZON_CONFIG, "process")
        assert stream_fingerprint(flat_result) == stream_fingerprint(plain)

    def test_time_varying_config_crosses_the_wire(self, time_varying_instance):
        """A time-indexed model + horizon config survives the pickle boundary
        and produces the same result as the serial in-process path."""
        serial = solve(time_varying_instance, HORIZON_CONFIG, "serial")
        process = solve(time_varying_instance, HORIZON_CONFIG, "process")
        assert stream_fingerprint(process) == stream_fingerprint(serial)
