"""Worker-process log records reach the parent's ``repro`` logger tree.

The pool lazily builds a ``multiprocessing.Queue`` + ``QueueListener`` relay
only when logging is configured; slot initializers point each worker's
``repro`` root at a ``QueueHandler``.  Records therefore arrive in the
parent with their worker ``processName`` intact — and a pool with logging
unconfigured builds no relay machinery at all.
"""

import logging

import pytest

from repro.distributed import DistributedCoordinator, SpatialPartitioner
from repro.geo import PORTO
from repro.obs import logs as obs_logs
from repro.online.batch import BatchConfig

from ..conftest import build_random_instance


class _Capture(logging.Handler):
    def __init__(self):
        super().__init__(level=logging.DEBUG)
        self.records = []

    def emit(self, record):
        self.records.append(record)


@pytest.fixture
def capture():
    obs_logs.configure_logging("DEBUG")
    root = logging.getLogger(obs_logs.ROOT_LOGGER)
    handler = _Capture()
    root.addHandler(handler)
    yield handler
    root.removeHandler(handler)
    for installed in list(root.handlers):
        if getattr(installed, "_repro_handler", False):
            root.removeHandler(installed)
    root.propagate = True
    root.setLevel(logging.NOTSET)
    obs_logs._configured_level = None


def test_process_worker_records_are_relayed(capture):
    instance = build_random_instance(task_count=30, driver_count=8, seed=43)
    with DistributedCoordinator(
        SpatialPartitioner(PORTO, 2, 2), executor="process"
    ) as coordinator:
        coordinator.solve_stream(instance, config=BatchConfig(window_s=600.0))
    worker_records = [
        record for record in capture.records
        if record.processName != "MainProcess"
    ]
    assert worker_records, "no worker-process records were relayed"
    assert any(
        "slot worker initialised" in record.getMessage()
        for record in worker_records
    )
    assert all(record.name.startswith("repro") for record in capture.records)


def test_unconfigured_pool_builds_no_relay():
    from repro.distributed.pool import PersistentWorkerPool

    assert obs_logs.configured_level() is None
    with PersistentWorkerPool(executor="process", worker_count=1) as pool:
        assert pool._log_spec() is None
        assert pool._log_listener is None
