"""Parity contract 17 — the exact tier through the distributed fan-out.

``solver_name="lp"`` (and ``"auto"``) must merge **bit-identically** across
the serial, thread and process executors, and the warm-pool path must match
the fork path — exactly like the greedy contracts 4/14, but now the payload
also carries per-shard :class:`ShardBounds`, so the fingerprint includes the
whole bound sandwich.  On top of the structural parity, the gap invariant:
every reported optimality gap is ``>= 0`` on every shard and in the
aggregate.
"""

import math

import pytest

from repro.distributed import (
    DistributedCoordinator,
    PersistentWorkerPool,
    SpatialPartitioner,
)
from repro.geo import PORTO
from repro.offline import ShardBounds

from ..conftest import build_random_instance

EXECUTORS = ("serial", "thread", "process")


@pytest.fixture(scope="module")
def instance():
    return build_random_instance(task_count=60, driver_count=15, seed=37)


def merged_fingerprint(result):
    """Everything contract 17 pins: solution, per-shard values *and* the full
    per-shard bound records (floats compared exactly — bit-identical)."""
    return (
        result.solution.assignment(),
        tuple((p.driver_id, p.task_indices, p.profit) for p in result.solution.plans),
        result.report.total_value,
        result.report.served_count,
        result.report.per_shard_values,
        result.report.per_shard_bounds,
    )


class TestContract17ExecutorParity:
    @pytest.mark.parametrize("solver", ["lp", "auto"])
    def test_all_executors_merge_identically(self, instance, solver):
        partitioner = SpatialPartitioner(PORTO, 2, 2)
        results = {
            executor: DistributedCoordinator(
                partitioner, solver, executor=executor, max_workers=2
            ).solve(instance)
            for executor in EXECUTORS
        }
        reference = merged_fingerprint(results["serial"])
        for executor in ("thread", "process"):
            assert merged_fingerprint(results[executor]) == reference, executor

    @pytest.mark.parametrize("executor", EXECUTORS)
    def test_pool_matches_fork_path(self, instance, executor):
        partitioner = SpatialPartitioner(PORTO, 2, 2)
        fork = DistributedCoordinator(
            partitioner, "lp", executor=executor, max_workers=2
        ).solve(instance)
        with PersistentWorkerPool(executor=executor, worker_count=2) as pool:
            pooled = DistributedCoordinator(
                partitioner, "lp", executor=executor, max_workers=2
            ).solve(instance, pool=pool)
        assert merged_fingerprint(pooled) == merged_fingerprint(fork)

    def test_auto_threshold_is_part_of_the_wire_format(self, instance):
        """Two coordinators with different thresholds may legitimately pick
        different tiers per shard — but each must still be executor-stable."""
        partitioner = SpatialPartitioner(PORTO, 2, 2)
        for threshold in (0.0, 0.05):
            serial = DistributedCoordinator(
                partitioner, "auto", executor="serial", gap_threshold=threshold
            ).solve(instance)
            process = DistributedCoordinator(
                partitioner, "auto", executor="process", gap_threshold=threshold,
                max_workers=2,
            ).solve(instance)
            assert merged_fingerprint(process) == merged_fingerprint(serial)


class TestContract17GapInvariants:
    def test_every_shard_reports_a_nonnegative_gap(self, instance):
        result = DistributedCoordinator(
            SpatialPartitioner(PORTO, 2, 2), "lp"
        ).solve(instance)
        report = result.report
        assert report.bounds_reported
        assert len(report.per_shard_bounds) == report.shard_count
        for bounds in report.per_shard_bounds:
            assert bounds.optimality_gap >= 0.0
            assert bounds.greedy_gap >= 0.0
            assert bounds.greedy_value <= bounds.lp_value + 1e-6
            assert bounds.lp_value <= bounds.upper_bound + 1e-6

    def test_aggregates_sum_the_shards(self, instance):
        report = DistributedCoordinator(
            SpatialPartitioner(PORTO, 2, 2), "lp"
        ).solve(instance).report
        assert report.greedy_revenue == pytest.approx(
            sum(b.greedy_value for b in report.per_shard_bounds)
        )
        assert report.lp_revenue == pytest.approx(
            sum(b.lp_value for b in report.per_shard_bounds)
        )
        assert report.lp_revenue == pytest.approx(report.total_value, rel=1e-9)
        assert report.optimality_gap >= 0.0
        assert report.greedy_gap >= report.optimality_gap - 1e-12

    def test_lp_never_ships_below_greedy(self, instance):
        partitioner = SpatialPartitioner(PORTO, 2, 2)
        greedy = DistributedCoordinator(partitioner, "greedy").solve(instance)
        lp = DistributedCoordinator(partitioner, "lp").solve(instance)
        assert lp.solution.total_value >= greedy.solution.total_value - 1e-9

    def test_degenerate_shards_carry_zero_bounds(self, instance):
        """An 8x8 grid leaves most cells empty; every degenerate shard must
        still carry a (zero) bounds record so the aggregate never sees a
        None hole."""
        report = DistributedCoordinator(
            SpatialPartitioner(PORTO, 8, 8), "lp"
        ).solve(instance).report
        assert report.bounds_reported
        assert len(report.per_shard_bounds) == 64
        zero = ShardBounds.zero()
        empty_bounds = [
            b for b, n in zip(report.per_shard_bounds, report.per_shard_task_counts)
            if n == 0
        ]
        assert empty_bounds and all(b == zero for b in empty_bounds)

    def test_heuristic_solvers_report_no_bounds(self, instance):
        report = DistributedCoordinator(
            SpatialPartitioner(PORTO, 2, 2), "greedy"
        ).solve(instance).report
        assert report.per_shard_bounds == ()
        assert not report.bounds_reported
        assert math.isnan(report.optimality_gap)
        assert math.isnan(report.greedy_revenue)
