"""Pooled offline solves and load-aware pre-splitting.

Two contracts land here:

* **pool == fork** — ``DistributedCoordinator.solve(pool=...)`` dispatches
  its shard requests onto persistent slot executors instead of forking a
  fresh pool per call, and the merged solution must be bit-identical to the
  fork path under every executor policy (same worker entries, same requests,
  same merge order).
* **LoadAwarePartitioner determinism** — the refined partition is a pure
  function of the prior load report and the policy: same report in, same
  shards out, and the split/merge decisions mirror the streaming
  rebalancer's rule (``plan_rebalance_action``).
"""

import pytest

from repro.distributed import (
    DistributedCoordinator,
    LoadAwarePartitioner,
    PersistentWorkerPool,
    RebalanceAction,
    RebalancePolicy,
    ShardLoadReport,
    SpatialPartitioner,
    hull_of_boxes,
    plan_rebalance_action,
)
from repro.geo import PORTO, BoundingBox

from ..conftest import build_random_instance

EXECUTORS = ("serial", "thread", "process")


@pytest.fixture(scope="module")
def instance():
    return build_random_instance(task_count=60, driver_count=15, seed=37)


def merged_fingerprint(result):
    """Everything that must be identical between the fork and pool paths."""
    return (
        result.solution.assignment(),
        tuple((p.driver_id, p.task_indices, p.profit) for p in result.solution.plans),
        result.report.total_value,
        result.report.served_count,
        result.report.per_shard_values,
        result.report.per_shard_task_counts,
    )


class TestPoolForkParity:
    @pytest.mark.parametrize("executor", EXECUTORS)
    def test_pool_matches_fork_path(self, instance, executor):
        """The headline contract: solve(pool=...) == solve(), per executor."""
        partitioner = SpatialPartitioner(PORTO, 2, 2)
        fork = DistributedCoordinator(
            partitioner, "greedy", executor=executor, max_workers=2
        ).solve(instance)
        with PersistentWorkerPool(executor=executor, worker_count=2) as pool:
            pooled = DistributedCoordinator(
                partitioner, "greedy", executor=executor, max_workers=2
            ).solve(instance, pool=pool)
        assert merged_fingerprint(pooled) == merged_fingerprint(fork)
        assert pooled.report.executor == executor

    @pytest.mark.parametrize("solver", ["greedy", "nearest", "maxMargin"])
    def test_every_solver_survives_the_pool(self, instance, solver):
        partitioner = SpatialPartitioner(PORTO, 2, 2)
        fork = DistributedCoordinator(partitioner, solver).solve(instance)
        with PersistentWorkerPool(executor="process", worker_count=2) as pool:
            pooled = DistributedCoordinator(partitioner, solver).solve(
                instance, pool=pool
            )
        assert merged_fingerprint(pooled) == merged_fingerprint(fork)

    def test_degenerate_shards_never_reach_the_pool(self, instance):
        """An 8x8 grid leaves most cells degenerate; the pool must only see
        the live shards and the merge must still count every shard."""
        partitioner = SpatialPartitioner(PORTO, 8, 8)
        fork = DistributedCoordinator(partitioner, "greedy").solve(instance)
        submitted = []

        class CountingPool(PersistentWorkerPool):
            def submit(self, slot, fn, /, *args):
                submitted.append(slot)
                return super().submit(slot, fn, *args)

        with CountingPool(executor="serial") as pool:
            pooled = DistributedCoordinator(partitioner, "greedy").solve(
                instance, pool=pool
            )
        live = sum(1 for s in fork.plan.shards if s.task_count and s.driver_count)
        assert live < 64
        assert len(submitted) == live
        assert merged_fingerprint(pooled) == merged_fingerprint(fork)
        assert pooled.report.shard_count == 64

    def test_report_reflects_the_pool(self, instance):
        with PersistentWorkerPool(executor="thread", worker_count=3) as pool:
            result = DistributedCoordinator(
                SpatialPartitioner(PORTO, 2, 2), "greedy", executor="serial"
            ).solve(instance, pool=pool)
        assert result.report.executor == "thread"
        assert result.report.worker_count <= 3


class TestPoolReuse:
    def test_consecutive_solves_share_one_warm_pool(self, instance):
        """The amortisation path: the slot executors survive across calls."""
        partitioner = SpatialPartitioner(PORTO, 2, 2)
        with PersistentWorkerPool(executor="process", worker_count=2) as pool:
            coordinator = DistributedCoordinator(partitioner, "greedy")
            first = coordinator.solve(instance, pool=pool)
            slots_after_first = list(pool._slots)
            second = coordinator.solve(instance, pool=pool)
            assert pool._slots == slots_after_first  # no refork between calls
        assert merged_fingerprint(first) == merged_fingerprint(second)

    def test_reuse_pool_flag_uses_the_coordinators_own_pool(self, instance):
        with DistributedCoordinator(
            SpatialPartitioner(PORTO, 2, 2), "greedy", executor="process", max_workers=2
        ) as coordinator:
            first = coordinator.solve(instance, reuse_pool=True)
            pool = coordinator._stream_pool
            assert pool is not None
            second = coordinator.solve(instance, reuse_pool=True)
            assert coordinator._stream_pool is pool
        assert merged_fingerprint(first) == merged_fingerprint(second)

    def test_offline_and_stream_share_one_pool(self, instance):
        """Offline solves and live streams interleave on the same slots."""
        partitioner = SpatialPartitioner(PORTO, 2, 2)
        with PersistentWorkerPool(executor="process", worker_count=2) as pool:
            coordinator = DistributedCoordinator(partitioner, "greedy")
            offline_a = coordinator.solve(instance, pool=pool)
            streamed = coordinator.solve_stream(instance, pool=pool)
            offline_b = coordinator.solve(instance, pool=pool)
        assert merged_fingerprint(offline_a) == merged_fingerprint(offline_b)
        assert streamed.report.shard_count == 4

    def test_closed_pool_is_rejected(self, instance):
        pool = PersistentWorkerPool(executor="serial")
        pool.close()
        with pytest.raises(RuntimeError):
            DistributedCoordinator(SpatialPartitioner(PORTO, 2, 2), "greedy").solve(
                instance, pool=pool
            )


class TestRebalanceActionRule:
    def test_hot_shard_splits(self):
        policy = RebalancePolicy(hot_factor=2.0, min_split_tasks=4)
        action = plan_rebalance_action((1, 20, 1, 2), policy)
        assert action == RebalanceAction(kind="split", positions=(1,))

    def test_cold_pair_merges_coldest_first(self):
        policy = RebalancePolicy(hot_factor=100.0, cold_factor=0.5, min_split_tasks=10**6)
        action = plan_rebalance_action((10, 1, 10, 0), policy)
        assert action is not None
        assert action.kind == "merge"
        assert action.positions == (3, 1)  # coldest first, not position order

    def test_quiet_when_balanced(self):
        policy = RebalancePolicy()
        assert plan_rebalance_action((5, 5, 5, 5), policy) is None
        assert plan_rebalance_action((), policy) is None
        assert plan_rebalance_action((0, 0), policy) is None

    def test_max_shards_caps_splitting(self):
        policy = RebalancePolicy(hot_factor=1.5, min_split_tasks=1, max_shards=2)
        assert plan_rebalance_action((100, 1), policy) is None


class TestShardLoadReport:
    def test_from_offline_result(self, instance):
        result = DistributedCoordinator(
            SpatialPartitioner(PORTO, 3, 3), "greedy"
        ).solve(instance)
        report = ShardLoadReport.from_prior(result)
        assert len(report.regions) == 9
        assert report.task_counts == result.report.per_shard_task_counts
        assert sum(report.task_counts) == instance.task_count

    def test_from_stream_result(self, instance):
        with DistributedCoordinator(
            SpatialPartitioner(PORTO, 2, 2), executor="serial"
        ) as coordinator:
            streamed = coordinator.solve_stream(instance)
        report = ShardLoadReport.from_prior(streamed)
        assert report.regions == streamed.regions
        assert sum(report.task_counts) == instance.task_count

    def test_round_trips_itself(self):
        report = ShardLoadReport(regions=((PORTO,),), task_counts=(3,))
        assert ShardLoadReport.from_prior(report) is report

    def test_misaligned_report_rejected(self):
        with pytest.raises(ValueError):
            ShardLoadReport(regions=((PORTO,),), task_counts=(1, 2))


class TestLoadAwarePartitioner:
    POLICY = RebalancePolicy(hot_factor=1.3, cold_factor=0.3, min_split_tasks=8)

    def test_deterministic_from_a_fixed_prior(self, instance):
        prior = DistributedCoordinator(
            SpatialPartitioner(PORTO, 3, 3), "greedy"
        ).solve(instance)
        a = LoadAwarePartitioner(PORTO, prior, policy=self.POLICY)
        b = LoadAwarePartitioner(PORTO, ShardLoadReport.from_prior(prior), policy=self.POLICY)
        assert a.box_groups == b.box_groups
        plan_a, plan_b = a.partition(instance), b.partition(instance)
        assert [s.global_task_indices for s in plan_a.shards] == [
            s.global_task_indices for s in plan_b.shards
        ]
        assert [s.global_driver_ids for s in plan_a.shards] == [
            s.global_driver_ids for s in plan_b.shards
        ]

    def test_pre_splitting_improves_balance(self, instance):
        """On skewed demand the refined partition must not be *less*
        balanced than the blind grid that produced the report."""
        prior = DistributedCoordinator(
            SpatialPartitioner(PORTO, 3, 3), "greedy"
        ).solve(instance)
        before = ShardLoadReport.from_prior(prior)
        refined = LoadAwarePartitioner(PORTO, prior, policy=self.POLICY)
        assert refined.shard_count != 9  # the skewed grid really triggered it
        after = ShardLoadReport.from_prior(refined.partition(instance))
        assert after.max_over_mean <= before.max_over_mean

    def test_partition_plan_is_exhaustive_and_disjoint(self, instance):
        prior = DistributedCoordinator(
            SpatialPartitioner(PORTO, 3, 3), "greedy"
        ).solve(instance)
        plan = LoadAwarePartitioner(PORTO, prior, policy=self.POLICY).partition(instance)
        seen = [g for shard in plan.shards for g in shard.global_task_indices]
        assert sorted(seen) == list(range(instance.task_count))
        driver_ids = [d for shard in plan.shards for d in shard.global_driver_ids]
        assert sorted(driver_ids) == sorted(d.driver_id for d in instance.drivers)
        assert plan.unassigned_tasks == ()

    @pytest.mark.parametrize("executor", EXECUTORS)
    def test_coordinator_solves_over_refined_shards(self, instance, executor):
        """The refined partition drops into solve()/merge like the grid, and
        stays executor-independent."""
        prior = DistributedCoordinator(
            SpatialPartitioner(PORTO, 3, 3), "greedy"
        ).solve(instance)
        partitioner = LoadAwarePartitioner(PORTO, prior, policy=self.POLICY)
        serial = DistributedCoordinator(partitioner, "greedy").solve(instance)
        other = DistributedCoordinator(
            partitioner, "greedy", executor=executor, max_workers=2
        ).solve(instance)
        assert merged_fingerprint(other) == merged_fingerprint(serial)
        serial.solution.validate()

    def test_streaming_router_uses_the_refined_regions(self, instance):
        prior = DistributedCoordinator(
            SpatialPartitioner(PORTO, 3, 3), "greedy"
        ).solve(instance)
        partitioner = LoadAwarePartitioner(PORTO, prior, policy=self.POLICY)
        with DistributedCoordinator(partitioner, executor="serial") as coordinator:
            streamed = coordinator.solve_stream(instance)
        assert streamed.report.shard_count == partitioner.shard_count
        assert streamed.regions == partitioner.box_groups

    def test_merged_shards_round_trip_their_exact_boxes(self, instance):
        """A merged multi-box shard must feed its *box group* — not its
        hull, which can overlap other shards — into the next report, so the
        solve -> report -> refine loop survives arbitrarily many cycles."""
        cells = PORTO.split(1, 3)
        # Cold outer columns around a hot middle: forces a non-adjacent merge
        # whose hull would swallow the middle shard's territory.
        report = ShardLoadReport(
            regions=((cells[0],), (cells[1],), (cells[2],)),
            task_counts=(1, 100, 1),
        )
        policy = RebalancePolicy(hot_factor=10.0, cold_factor=0.5, min_split_tasks=10**6)
        refined = LoadAwarePartitioner(PORTO, report, policy=policy, rounds=1)
        merged = [g for g in refined.box_groups if len(g) > 1]
        assert merged == [(cells[0], cells[2])]  # the non-adjacent cold pair

        plan = refined.partition(instance)
        round_tripped = ShardLoadReport.from_prior(plan)
        assert round_tripped.regions == refined.box_groups
        # The round trip must keep routing identical, not just regions.
        again = LoadAwarePartitioner(PORTO, round_tripped, rounds=0)
        plan_again = again.partition(instance)
        assert [s.global_task_indices for s in plan_again.shards] == [
            s.global_task_indices for s in plan.shards
        ]

    def test_zero_rounds_round_trips_the_report(self, instance):
        prior = DistributedCoordinator(
            SpatialPartitioner(PORTO, 2, 2), "greedy"
        ).solve(instance)
        partitioner = LoadAwarePartitioner(PORTO, prior, rounds=0)
        assert partitioner.box_groups == ShardLoadReport.from_prior(prior).regions


class TestHullOfBoxes:
    def test_hull_spans_every_box(self):
        boxes = PORTO.split(2, 2)
        assert hull_of_boxes(boxes) == PORTO
        assert hull_of_boxes([boxes[0]]) == boxes[0]

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            hull_of_boxes([])
