"""Tests for the array-backed shard payloads of the process executor."""

import pickle

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.distributed import (
    ShardWorkRequest,
    SpatialPartitioner,
    delta_from_tasks,
    instance_from_payload,
    payload_from_shard,
    solve_shard,
    solve_shard_payload,
    tasks_from_delta,
)
from repro.geo import PORTO, GeoPoint
from repro.market import Driver, MarketInstance, Task

from ..conftest import build_random_instance


@pytest.fixture(scope="module")
def plan():
    instance = build_random_instance(task_count=60, driver_count=15, seed=37)
    return SpatialPartitioner(PORTO, 2, 2).partition(instance)


class TestPayloadRoundTrip:
    def test_rebuilt_instance_is_value_identical(self, plan):
        for shard in plan.shards:
            rebuilt = instance_from_payload(payload_from_shard(shard))
            assert rebuilt.drivers == shard.instance.drivers
            assert rebuilt.tasks == shard.instance.tasks
            assert rebuilt.cost_model is shard.instance.cost_model

    def test_optional_fields_use_nan_sentinels(self):
        a = GeoPoint(41.15, -8.62)
        b = GeoPoint(41.16, -8.60)
        tasks = (
            Task("with-extras", 0.0, a, b, 600.0, 1800.0, price=5.0, wtp=7.5, distance_km=2.5),
            Task("bare", 0.0, b, a, 600.0, 1800.0, price=4.0),
        )
        drivers = (Driver("d", a, b, 0.0, 7200.0),)
        instance = MarketInstance.create(drivers=drivers, tasks=tasks)
        shard = SpatialPartitioner(PORTO, 1, 1).partition(instance).shards[0]
        payload = payload_from_shard(shard)
        assert payload.task_wtps[0] == 7.5
        assert np.isnan(payload.task_wtps[1])
        assert np.isnan(payload.task_distances[1])
        rebuilt = instance_from_payload(payload)
        assert rebuilt.tasks[0].wtp == 7.5
        assert rebuilt.tasks[1].wtp is None
        assert rebuilt.tasks[1].distance_km is None

    def test_payload_is_picklable_without_derived_state(self, plan):
        shard = max(plan.shards, key=lambda s: s.task_count)
        # Force the expensive caches the payload must NOT carry.
        shard.instance.task_maps
        payload = payload_from_shard(shard)
        blob = pickle.dumps(payload)
        restored = pickle.loads(blob)
        assert restored.task_ids == payload.task_ids
        assert np.array_equal(restored.task_coords, payload.task_coords)
        # The payload ships primal arrays only; it must stay far below the
        # pickled object graph with its cached task maps.
        assert len(blob) < len(pickle.dumps(shard)) / 2


class TestPayloadDelta:
    """The streaming wire format: accumulated deltas == full-payload rebuild."""

    def test_round_trip_is_value_identical(self, plan):
        shard = max(plan.shards, key=lambda s: s.task_count)
        delta = delta_from_tasks(shard.spec.shard_id, shard.instance.tasks)
        assert tasks_from_delta(delta) == shard.instance.tasks
        assert delta.task_count == shard.task_count

    def test_delta_is_picklable(self, plan):
        shard = max(plan.shards, key=lambda s: s.task_count)
        delta = delta_from_tasks(shard.spec.shard_id, shard.instance.tasks)
        restored = pickle.loads(pickle.dumps(delta))
        assert tasks_from_delta(restored) == shard.instance.tasks

    @settings(max_examples=20, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    @given(cuts=st.lists(st.integers(min_value=0, max_value=60), max_size=6))
    def test_any_batch_split_rebuilds_the_full_payload(self, plan, cuts):
        """Shipping a stream as per-batch deltas rebuilds exactly the task
        tuple the one-shot full payload carries, for any batch boundaries."""
        shard = max(plan.shards, key=lambda s: s.task_count)
        tasks = shard.instance.tasks
        boundaries = sorted({0, len(tasks), *(min(c, len(tasks)) for c in cuts)})
        accumulated = []
        for lo, hi in zip(boundaries[:-1], boundaries[1:]):
            delta = delta_from_tasks(shard.spec.shard_id, tasks[lo:hi])
            accumulated.extend(tasks_from_delta(delta))
        full = instance_from_payload(payload_from_shard(shard))
        assert tuple(accumulated) == full.tasks
        assert tuple(accumulated) == tasks


class TestWorkerEntry:
    @pytest.mark.parametrize("solver", ["greedy", "nearest", "maxMargin"])
    def test_matches_in_process_worker(self, plan, solver):
        shard = max(plan.shards, key=lambda s: s.task_count)
        request = ShardWorkRequest(
            shard.spec.shard_id, shard.driver_count, shard.task_count, solver, seed=3
        )
        direct = solve_shard(shard, request)
        via_payload = solve_shard_payload(payload_from_shard(shard), request)
        assert via_payload.assignment == direct.assignment
        assert via_payload.driver_profits == direct.driver_profits
        assert via_payload.total_value == direct.total_value
        assert via_payload.served_count == direct.served_count

    def test_unknown_solver_rejected(self, plan):
        payload = payload_from_shard(plan.shards[0])
        with pytest.raises(ValueError):
            solve_shard_payload(payload, ShardWorkRequest(0, 1, 1, "simplex"))
