"""Tests for the array-backed shard payloads of the process executor."""

import pickle

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.distributed import (
    ShardPayload,
    ShardPayloadDelta,
    ShardWorkRequest,
    SpatialPartitioner,
    delta_from_tasks,
    instance_from_payload,
    payload_from_shard,
    solve_shard,
    solve_shard_payload,
    tasks_from_delta,
)
from repro.geo import PORTO, GeoPoint
from repro.market import Driver, MarketInstance, Task
from repro.market.cost import MarketCostModel

from ..conftest import build_random_instance


@pytest.fixture(scope="module")
def plan():
    instance = build_random_instance(task_count=60, driver_count=15, seed=37)
    return SpatialPartitioner(PORTO, 2, 2).partition(instance)


class TestPayloadRoundTrip:
    def test_rebuilt_instance_is_value_identical(self, plan):
        for shard in plan.shards:
            rebuilt = instance_from_payload(payload_from_shard(shard))
            assert rebuilt.drivers == shard.instance.drivers
            assert rebuilt.tasks == shard.instance.tasks
            assert rebuilt.cost_model is shard.instance.cost_model

    def test_optional_fields_use_nan_sentinels(self):
        a = GeoPoint(41.15, -8.62)
        b = GeoPoint(41.16, -8.60)
        tasks = (
            Task("with-extras", 0.0, a, b, 600.0, 1800.0, price=5.0, wtp=7.5, distance_km=2.5),
            Task("bare", 0.0, b, a, 600.0, 1800.0, price=4.0),
        )
        drivers = (Driver("d", a, b, 0.0, 7200.0),)
        instance = MarketInstance.create(drivers=drivers, tasks=tasks)
        shard = SpatialPartitioner(PORTO, 1, 1).partition(instance).shards[0]
        payload = payload_from_shard(shard)
        assert payload.task_wtps[0] == 7.5
        assert np.isnan(payload.task_wtps[1])
        assert np.isnan(payload.task_distances[1])
        rebuilt = instance_from_payload(payload)
        assert rebuilt.tasks[0].wtp == 7.5
        assert rebuilt.tasks[1].wtp is None
        assert rebuilt.tasks[1].distance_km is None

    def test_payload_is_picklable_without_derived_state(self, plan):
        shard = max(plan.shards, key=lambda s: s.task_count)
        # Force the expensive caches the payload must NOT carry.
        shard.instance.task_maps
        payload = payload_from_shard(shard)
        blob = pickle.dumps(payload)
        restored = pickle.loads(blob)
        assert restored.task_ids == payload.task_ids
        assert np.array_equal(restored.task_coords, payload.task_coords)
        # The payload ships primal arrays only; it must stay far below the
        # pickled object graph with its cached task maps.
        assert len(blob) < len(pickle.dumps(shard)) / 2


class TestArrayNormalisation:
    """Transport invariant: every payload column is C-contiguous float64.

    The wire layout (pickle and shared-memory alike) ships each column as one
    flat float64 buffer; a transposed view or a float32 array sneaking into a
    hand-built payload must be coerced at construction, not corrupt the
    segment layout at ship time.
    """

    def test_payload_coerces_transposed_and_float32_input(self):
        coords = np.asfortranarray(
            [[41.15, -8.62, 41.16, -8.60], [41.14, -8.61, 41.17, -8.59]]
        )
        assert not coords.flags["C_CONTIGUOUS"]  # a genuinely hostile input
        payload = ShardPayload(
            shard_id=0,
            driver_ids=("d0", "d1"),
            driver_coords=coords,
            driver_windows=np.array([[0, 7200], [0, 7200]], dtype=np.int64),
            task_ids=("t0",),
            task_coords=np.array([[41.15, -8.61, 41.155, -8.605]], dtype=np.float32),
            task_times=np.array([[0.0, 600.0, 1800.0]], dtype=np.float32),
            task_prices=np.array([5.0], dtype=np.float32),
            task_wtps=np.array([np.nan], dtype=np.float32),
            task_distances=np.array([2.5], dtype=np.float32),
            cost_model=MarketCostModel(),
        )
        for name in ShardPayload.ARRAY_FIELDS:
            column = getattr(payload, name)
            assert column.dtype == np.float64, name
            assert column.flags["C_CONTIGUOUS"], name
        assert np.array_equal(payload.driver_coords, np.ascontiguousarray(coords))
        assert payload.driver_windows.tolist() == [[0.0, 7200.0], [0.0, 7200.0]]
        assert np.isnan(payload.task_wtps[0])
        # The coerced payload is still a working instance.
        rebuilt = instance_from_payload(payload)
        assert rebuilt.tasks[0].distance_km == pytest.approx(2.5)

    def test_delta_coerces_like_the_payload(self):
        delta = ShardPayloadDelta(
            shard_id=3,
            task_ids=("t0", "t1"),
            task_coords=np.zeros((4, 2), dtype=np.float32).T,
            task_times=np.array([[0.0, 0.0], [600.0, 600.0], [1800.0, 1800.0]]).T,
            task_prices=np.array([5, 6], dtype=np.int32),
            task_wtps=np.array([np.nan, 7.5], dtype=np.float32),
            task_distances=np.array([np.nan, np.nan], dtype=np.float32),
        )
        for name in ShardPayloadDelta.ARRAY_FIELDS:
            column = getattr(delta, name)
            assert column.dtype == np.float64, name
            assert column.flags["C_CONTIGUOUS"], name
        tasks = tasks_from_delta(delta)
        assert tasks[0].wtp is None and tasks[1].wtp == 7.5

    def test_pipeline_built_payloads_already_comply(self, plan):
        """The normal construction path satisfies the invariant natively, so
        coercion is a no-op there (what keeps the shm receive path zero-copy)."""
        for shard in plan.shards:
            payload = payload_from_shard(shard)
            for name in ShardPayload.ARRAY_FIELDS:
                column = getattr(payload, name)
                assert column.dtype == np.float64
                assert column.flags["C_CONTIGUOUS"]


class TestPayloadDelta:
    """The streaming wire format: accumulated deltas == full-payload rebuild."""

    def test_round_trip_is_value_identical(self, plan):
        shard = max(plan.shards, key=lambda s: s.task_count)
        delta = delta_from_tasks(shard.spec.shard_id, shard.instance.tasks)
        assert tasks_from_delta(delta) == shard.instance.tasks
        assert delta.task_count == shard.task_count

    def test_delta_is_picklable(self, plan):
        shard = max(plan.shards, key=lambda s: s.task_count)
        delta = delta_from_tasks(shard.spec.shard_id, shard.instance.tasks)
        restored = pickle.loads(pickle.dumps(delta))
        assert tasks_from_delta(restored) == shard.instance.tasks

    @settings(max_examples=20, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    @given(cuts=st.lists(st.integers(min_value=0, max_value=60), max_size=6))
    def test_any_batch_split_rebuilds_the_full_payload(self, plan, cuts):
        """Shipping a stream as per-batch deltas rebuilds exactly the task
        tuple the one-shot full payload carries, for any batch boundaries."""
        shard = max(plan.shards, key=lambda s: s.task_count)
        tasks = shard.instance.tasks
        boundaries = sorted({0, len(tasks), *(min(c, len(tasks)) for c in cuts)})
        accumulated = []
        for lo, hi in zip(boundaries[:-1], boundaries[1:]):
            delta = delta_from_tasks(shard.spec.shard_id, tasks[lo:hi])
            accumulated.extend(tasks_from_delta(delta))
        full = instance_from_payload(payload_from_shard(shard))
        assert tuple(accumulated) == full.tasks
        assert tuple(accumulated) == tasks


class TestWorkerEntry:
    @pytest.mark.parametrize("solver", ["greedy", "nearest", "maxMargin"])
    def test_matches_in_process_worker(self, plan, solver):
        shard = max(plan.shards, key=lambda s: s.task_count)
        request = ShardWorkRequest(
            shard.spec.shard_id, shard.driver_count, shard.task_count, solver, seed=3
        )
        direct = solve_shard(shard, request)
        via_payload = solve_shard_payload(payload_from_shard(shard), request)
        assert via_payload.assignment == direct.assignment
        assert via_payload.driver_profits == direct.driver_profits
        assert via_payload.total_value == direct.total_value
        assert via_payload.served_count == direct.served_count

    def test_unknown_solver_rejected(self, plan):
        payload = payload_from_shard(plan.shards[0])
        with pytest.raises(ValueError):
            solve_shard_payload(payload, ShardWorkRequest(0, 1, 1, "simplex"))
