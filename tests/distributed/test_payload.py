"""Tests for the array-backed shard payloads of the process executor."""

import pickle

import numpy as np
import pytest

from repro.distributed import (
    ShardWorkRequest,
    SpatialPartitioner,
    instance_from_payload,
    payload_from_shard,
    solve_shard,
    solve_shard_payload,
)
from repro.geo import PORTO, GeoPoint
from repro.market import Driver, MarketInstance, Task

from ..conftest import build_random_instance


@pytest.fixture(scope="module")
def plan():
    instance = build_random_instance(task_count=60, driver_count=15, seed=37)
    return SpatialPartitioner(PORTO, 2, 2).partition(instance)


class TestPayloadRoundTrip:
    def test_rebuilt_instance_is_value_identical(self, plan):
        for shard in plan.shards:
            rebuilt = instance_from_payload(payload_from_shard(shard))
            assert rebuilt.drivers == shard.instance.drivers
            assert rebuilt.tasks == shard.instance.tasks
            assert rebuilt.cost_model is shard.instance.cost_model

    def test_optional_fields_use_nan_sentinels(self):
        a = GeoPoint(41.15, -8.62)
        b = GeoPoint(41.16, -8.60)
        tasks = (
            Task("with-extras", 0.0, a, b, 600.0, 1800.0, price=5.0, wtp=7.5, distance_km=2.5),
            Task("bare", 0.0, b, a, 600.0, 1800.0, price=4.0),
        )
        drivers = (Driver("d", a, b, 0.0, 7200.0),)
        instance = MarketInstance.create(drivers=drivers, tasks=tasks)
        shard = SpatialPartitioner(PORTO, 1, 1).partition(instance).shards[0]
        payload = payload_from_shard(shard)
        assert payload.task_wtps[0] == 7.5
        assert np.isnan(payload.task_wtps[1])
        assert np.isnan(payload.task_distances[1])
        rebuilt = instance_from_payload(payload)
        assert rebuilt.tasks[0].wtp == 7.5
        assert rebuilt.tasks[1].wtp is None
        assert rebuilt.tasks[1].distance_km is None

    def test_payload_is_picklable_without_derived_state(self, plan):
        shard = max(plan.shards, key=lambda s: s.task_count)
        # Force the expensive caches the payload must NOT carry.
        shard.instance.task_maps
        payload = payload_from_shard(shard)
        blob = pickle.dumps(payload)
        restored = pickle.loads(blob)
        assert restored.task_ids == payload.task_ids
        assert np.array_equal(restored.task_coords, payload.task_coords)
        # The payload ships primal arrays only; it must stay far below the
        # pickled object graph with its cached task maps.
        assert len(blob) < len(pickle.dumps(shard)) / 2


class TestWorkerEntry:
    @pytest.mark.parametrize("solver", ["greedy", "nearest", "maxMargin"])
    def test_matches_in_process_worker(self, plan, solver):
        shard = max(plan.shards, key=lambda s: s.task_count)
        request = ShardWorkRequest(
            shard.spec.shard_id, shard.driver_count, shard.task_count, solver, seed=3
        )
        direct = solve_shard(shard, request)
        via_payload = solve_shard_payload(payload_from_shard(shard), request)
        assert via_payload.assignment == direct.assignment
        assert via_payload.driver_profits == direct.driver_profits
        assert via_payload.total_value == direct.total_value
        assert via_payload.served_count == direct.served_count

    def test_unknown_solver_rejected(self, plan):
        payload = payload_from_shard(plan.shards[0])
        with pytest.raises(ValueError):
            solve_shard_payload(payload, ShardWorkRequest(0, 1, 1, "simplex"))
