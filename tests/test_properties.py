"""Cross-module property-based tests (hypothesis).

These exercise the core invariants of the framework on randomly generated
market instances:

* feasibility of every solver's output;
* the bound chain ``greedy <= Z* <= Z*_f <= Lagrangian``;
* the ``1/(D+1)`` approximation guarantee of Theorem 1;
* online outcomes never exceeding the offline optimum under trace-replay
  semantics.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import MarketSolution
from repro.geo import (
    EquirectangularEstimator,
    GeoPoint,
    HaversineEstimator,
    ManhattanEstimator,
    TravelModel,
)
from repro.market import Driver, MarketCostModel, MarketInstance, Task, market_diameter
from repro.offline import (
    best_path,
    exact_optimum,
    greedy_assignment,
    lagrangian_bound,
    lp_relaxation_bound,
)
from repro.online import MaxMarginDispatcher, NearestDispatcher, run_online

ANCHOR = GeoPoint(41.17, -8.62)
SPEED_KMH = 30.0
COST_PER_KM = 0.12


def build_instance(seed: int, task_count: int, driver_count: int) -> MarketInstance:
    """A compact random instance with generous-but-varied time windows.

    Hand-rolled (rather than reusing the trace generator) so hypothesis can
    shrink the seed space quickly and windows/locations vary more wildly than
    the calibrated generator allows.
    """
    rng = random.Random(seed)
    cost_model = MarketCostModel(
        TravelModel(HaversineEstimator(circuity=1.0), speed_kmh=SPEED_KMH, cost_per_km=COST_PER_KM)
    )

    def random_point() -> GeoPoint:
        return ANCHOR.offset_km(rng.uniform(-4.0, 4.0), rng.uniform(-4.0, 4.0))

    tasks = []
    for m in range(task_count):
        source = random_point()
        destination = random_point()
        distance = max(0.3, source.haversine_km(destination))
        duration = distance / SPEED_KMH * 3600.0
        start = rng.uniform(0.0, 6.0) * 3600.0
        window_pad = rng.uniform(1.0, 1.6)
        tasks.append(
            Task(
                task_id=f"t{m}",
                publish_ts=start - rng.uniform(300.0, 900.0),
                source=source,
                destination=destination,
                start_deadline_ts=start,
                end_deadline_ts=start + duration * window_pad + 60.0,
                price=rng.uniform(1.0, 3.0) + distance * rng.uniform(0.5, 1.2),
                distance_km=distance,
            )
        )

    drivers = []
    for n in range(driver_count):
        start = rng.uniform(0.0, 4.0) * 3600.0
        drivers.append(
            Driver(
                driver_id=f"d{n}",
                source=random_point(),
                destination=random_point(),
                start_ts=start,
                end_ts=start + rng.uniform(1.0, 5.0) * 3600.0,
            )
        )
    return MarketInstance.create(drivers=drivers, tasks=tasks, cost_model=cost_model)


market_params = st.tuples(
    st.integers(min_value=0, max_value=10_000),  # seed
    st.integers(min_value=3, max_value=14),      # tasks
    st.integers(min_value=1, max_value=5),       # drivers
)

SLOW_SETTINGS = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)


class TestSolverProperties:
    @given(market_params)
    @SLOW_SETTINGS
    def test_greedy_solution_is_always_feasible(self, params):
        seed, tasks, drivers = params
        instance = build_instance(seed, tasks, drivers)
        solution = greedy_assignment(instance)
        solution.validate()
        assert solution.total_value >= -1e-9

    @given(market_params)
    @SLOW_SETTINGS
    def test_bound_chain_holds(self, params):
        seed, tasks, drivers = params
        instance = build_instance(seed, tasks, drivers)
        greedy = greedy_assignment(instance).total_value
        exact = exact_optimum(instance).optimum
        lp = lp_relaxation_bound(instance).upper_bound
        lagrangian = lagrangian_bound(instance, iterations=15, target_value=greedy).upper_bound
        assert greedy <= exact + 1e-6
        assert exact <= lp + 1e-6
        assert exact <= lagrangian + 1e-6

    @given(market_params)
    @SLOW_SETTINGS
    def test_theorem1_approximation_guarantee(self, params):
        seed, tasks, drivers = params
        instance = build_instance(seed, tasks, drivers)
        greedy = greedy_assignment(instance).total_value
        exact = exact_optimum(instance).optimum
        diameter = market_diameter(instance)
        assert greedy >= exact / (diameter + 1) - 1e-6

    @given(market_params)
    @SLOW_SETTINGS
    def test_exact_solution_validates_and_matches_reported_optimum(self, params):
        seed, tasks, drivers = params
        instance = build_instance(seed, tasks, drivers)
        result = exact_optimum(instance)
        result.solution.validate()
        assert result.solution.total_value == pytest.approx(result.optimum, rel=1e-6, abs=1e-6)

    @given(market_params)
    @SLOW_SETTINGS
    def test_online_outcomes_bounded_by_exact_optimum(self, params):
        seed, tasks, drivers = params
        instance = build_instance(seed, tasks, drivers)
        exact = exact_optimum(instance).optimum
        for dispatcher in (NearestDispatcher(seed=seed), MaxMarginDispatcher()):
            outcome = run_online(instance, dispatcher)
            assert outcome.total_value <= exact + 1e-6
            served = [m for r in outcome.records for m in r.task_indices]
            assert len(served) == len(set(served))

    @given(market_params)
    @SLOW_SETTINGS
    def test_best_path_profit_consistent_with_path_evaluation(self, params):
        seed, tasks, drivers = params
        instance = build_instance(seed, tasks, drivers)
        for driver in instance.drivers:
            task_map = instance.task_map(driver.driver_id)
            result = best_path(task_map)
            assert task_map.is_feasible_path(result.path)
            if result.path:
                assert result.profit == pytest.approx(task_map.path_profit(result.path), rel=1e-9)


coordinate = st.tuples(
    st.floats(min_value=-89.0, max_value=89.0, allow_nan=False),
    st.floats(min_value=-179.0, max_value=179.0, allow_nan=False),
)

coordinate_lists = st.tuples(
    st.lists(coordinate, min_size=1, max_size=12),
    st.lists(coordinate, min_size=1, max_size=12),
)

BATCH_ESTIMATORS = (
    HaversineEstimator(),
    HaversineEstimator(circuity=1.0),
    EquirectangularEstimator(),
    ManhattanEstimator(),
)


class TestBatchGeoKernelParity:
    """The vectorised geo kernels must reproduce the scalar estimators
    everywhere — they feed the same candidate feasibility checks."""

    @given(coordinate_lists)
    @settings(max_examples=50, deadline=None)
    def test_cross_km_matches_scalar_estimators(self, coords):
        raw_a, raw_b = coords
        a = [GeoPoint(lat, lon) for lat, lon in raw_a]
        b = [GeoPoint(lat, lon) for lat, lon in raw_b]
        for estimator in BATCH_ESTIMATORS:
            matrix = estimator.cross_km(a, b)
            assert matrix.shape == (len(a), len(b))
            for i, origin in enumerate(a):
                for j, destination in enumerate(b):
                    assert matrix[i, j] == pytest.approx(
                        estimator.distance_km(origin, destination), abs=1e-9
                    )

    @given(st.lists(st.tuples(coordinate, coordinate), min_size=1, max_size=20))
    @settings(max_examples=50, deadline=None)
    def test_pairwise_km_matches_scalar_estimators(self, pairs):
        a = [GeoPoint(lat, lon) for (lat, lon), _ in pairs]
        b = [GeoPoint(lat, lon) for _, (lat, lon) in pairs]
        for estimator in BATCH_ESTIMATORS:
            batch = estimator.pairwise_km(a, b)
            for i in range(len(pairs)):
                assert batch[i] == pytest.approx(
                    estimator.distance_km(a[i], b[i]), abs=1e-9
                )

    @given(coordinate_lists)
    @settings(max_examples=25, deadline=None)
    def test_leg_matrix_matches_scalar_legs(self, coords):
        raw_a, raw_b = coords
        a = [GeoPoint(lat, lon) for lat, lon in raw_a]
        b = [GeoPoint(lat, lon) for lat, lon in raw_b]
        cost_model = MarketCostModel(
            TravelModel(HaversineEstimator(), speed_kmh=28.0, cost_per_km=0.11)
        )
        times, costs = cost_model.pairwise_leg_matrix(a, b)
        for i, origin in enumerate(a):
            for j, destination in enumerate(b):
                leg = cost_model.leg(origin, destination)
                # Times can reach ~1e6 s for near-antipodal pairs, where a
                # few ULPs exceed any fixed absolute tolerance — allow a
                # round-off-level relative term as well.
                assert times[i, j] == pytest.approx(leg.time_s, rel=1e-12, abs=1e-9)
                assert costs[i, j] == pytest.approx(leg.cost, rel=1e-12, abs=1e-9)


class TestSolutionAlgebraProperties:
    @given(market_params)
    @SLOW_SETTINGS
    def test_profit_decomposition(self, params):
        """For every driver plan, profit == sum(prices) - excess cost."""
        seed, tasks, drivers = params
        instance = build_instance(seed, tasks, drivers)
        solution = greedy_assignment(instance)
        for plan in solution.iter_nonempty_plans():
            task_map = instance.task_map(plan.driver_id)
            prices = sum(instance.tasks[m].price for m in plan.task_indices)
            excess = task_map.path_excess_cost(plan.task_indices)
            assert plan.profit == pytest.approx(prices - excess, rel=1e-9, abs=1e-9)

    @given(market_params)
    @SLOW_SETTINGS
    def test_total_value_equals_sum_of_plans(self, params):
        seed, tasks, drivers = params
        instance = build_instance(seed, tasks, drivers)
        solution = greedy_assignment(instance)
        rebuilt = MarketSolution.from_assignment(instance, solution.assignment())
        assert rebuilt.total_value == pytest.approx(solution.total_value, rel=1e-9, abs=1e-9)
        assert rebuilt.served_tasks() == solution.served_tasks()
