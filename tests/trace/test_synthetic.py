"""Tests for the synthetic Porto-like trace generator."""

import numpy as np
import pytest

from repro.geo import PORTO
from repro.trace import (
    DIURNAL_WEIGHTS,
    PortoLikeTraceGenerator,
    TraceConfig,
    generate_trace,
    tail_heaviness,
)


class TestTraceConfig:
    def test_defaults_match_paper_setup(self):
        cfg = TraceConfig()
        assert cfg.fleet_size == 442
        assert cfg.bounding_box == PORTO

    def test_invalid_configs(self):
        with pytest.raises(ValueError):
            TraceConfig(fleet_size=0)
        with pytest.raises(ValueError):
            TraceConfig(downtown_fraction=1.5)
        with pytest.raises(ValueError):
            TraceConfig(duration_min_s=0.0)
        with pytest.raises(ValueError):
            TraceConfig(speed_jitter=1.0)

    def test_diurnal_weights_cover_24_hours(self):
        assert len(DIURNAL_WEIGHTS) == 24
        assert all(w > 0 for w in DIURNAL_WEIGHTS)


class TestGeneration:
    def test_trip_count_and_sorting(self):
        trips = generate_trace(trip_count=200, seed=1)
        assert len(trips) == 200
        starts = [t.start_ts for t in trips]
        assert starts == sorted(starts)

    def test_determinism(self):
        a = generate_trace(trip_count=50, seed=7)
        b = generate_trace(trip_count=50, seed=7)
        assert [t.trip_id for t in a] == [t.trip_id for t in b]
        assert [t.start_ts for t in a] == [t.start_ts for t in b]
        assert [t.distance_km for t in a] == [t.distance_km for t in b]

    def test_different_seeds_differ(self):
        a = generate_trace(trip_count=50, seed=1)
        b = generate_trace(trip_count=50, seed=2)
        assert [t.start_ts for t in a] != [t.start_ts for t in b]

    def test_locations_inside_service_area(self):
        trips = generate_trace(trip_count=300, seed=2)
        for trip in trips:
            assert PORTO.contains(trip.origin)
            assert PORTO.contains(trip.destination)

    def test_durations_within_configured_bounds(self):
        cfg = TraceConfig()
        trips = generate_trace(trip_count=300, seed=3)
        for trip in trips:
            assert cfg.duration_min_s <= trip.duration_s <= cfg.duration_max_s

    def test_driver_ids_within_fleet(self):
        trips = generate_trace(trip_count=300, seed=4)
        fleet = {t.driver_id for t in trips}
        assert all(d.startswith("taxi-") for d in fleet)
        assert len(fleet) <= TraceConfig().fleet_size

    def test_day_index_shifts_timestamps(self):
        generator = PortoLikeTraceGenerator()
        day0 = generator.generate_day(0, trip_count=20)
        day1 = generator.generate_day(1, trip_count=20)
        assert all(t.start_ts < 86400.0 for t in day0)
        assert all(86400.0 <= t.start_ts < 2 * 86400.0 for t in day1)

    def test_generate_days_concatenates(self):
        generator = PortoLikeTraceGenerator()
        trips = generator.generate_days(2, trips_per_day=15)
        assert len(trips) == 30

    def test_invalid_arguments(self):
        generator = PortoLikeTraceGenerator()
        with pytest.raises(ValueError):
            generator.generate_day(-1)
        with pytest.raises(ValueError):
            generator.generate_day(0, trip_count=-5)
        with pytest.raises(ValueError):
            generator.generate_days(-1)


class TestMarginals:
    """The generator must reproduce the paper's Fig. 3 / Fig. 4 shapes."""

    @pytest.fixture(scope="class")
    def trips(self):
        return generate_trace(trip_count=4000, seed=11)

    def test_travel_time_is_heavy_tailed(self, trips):
        durations = [t.duration_min for t in trips]
        assert tail_heaviness(durations) > 3.0

    def test_travel_distance_is_heavy_tailed(self, trips):
        distances = [t.distance_km for t in trips]
        assert tail_heaviness(distances) > 3.0

    def test_median_duration_is_city_trip_scale(self, trips):
        median_min = np.median([t.duration_min for t in trips])
        assert 3.0 <= median_min <= 15.0

    def test_speeds_are_plausible(self, trips):
        speeds = np.array([t.average_speed_kmh for t in trips])
        assert speeds.min() > 5.0
        assert speeds.max() < 60.0

    def test_demand_peaks_during_daytime(self, trips):
        hours = np.array([(t.start_ts % 86400.0) // 3600.0 for t in trips])
        night = np.sum((hours >= 1) & (hours < 5))
        evening = np.sum((hours >= 17) & (hours < 21))
        assert evening > 2 * night
