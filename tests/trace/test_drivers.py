"""Tests for the Monte-Carlo driver-schedule generator."""

import pytest

from repro.geo import PORTO
from repro.trace import (
    DriverGenerationConfig,
    DriverScheduleGenerator,
    WorkingModel,
    generate_drivers,
    generate_trace,
)


class TestConfigValidation:
    def test_invalid_configs(self):
        with pytest.raises(ValueError):
            DriverGenerationConfig(shift_hours_mean=0.0)
        with pytest.raises(ValueError):
            DriverGenerationConfig(shift_hours_jitter=-1.0)
        with pytest.raises(ValueError):
            DriverGenerationConfig(earliest_start_s=10.0, latest_start_s=5.0)
        with pytest.raises(ValueError):
            DriverGenerationConfig(downtown_fraction=-0.1)


class TestGenerate:
    def test_count_and_unique_ids(self):
        drivers = generate_drivers(30, seed=1)
        assert len(drivers) == 30
        assert len({d.driver_id for d in drivers}) == 30

    def test_negative_count_rejected(self):
        generator = DriverScheduleGenerator()
        with pytest.raises(ValueError):
            generator.generate(-1)

    def test_determinism(self):
        a = generate_drivers(10, seed=5)
        b = generate_drivers(10, seed=5)
        assert [(d.source, d.start_ts) for d in a] == [(d.source, d.start_ts) for d in b]

    def test_locations_inside_service_area(self):
        for driver in generate_drivers(100, seed=2):
            assert PORTO.contains(driver.source)
            assert PORTO.contains(driver.destination)

    def test_hitchhiking_model_has_distinct_endpoints(self):
        drivers = generate_drivers(50, working_model=WorkingModel.HITCHHIKING, seed=3)
        distinct = sum(1 for d in drivers if not d.is_home_work_home)
        assert distinct == 50

    def test_home_work_home_model_has_equal_endpoints(self):
        drivers = generate_drivers(50, working_model=WorkingModel.HOME_WORK_HOME, seed=3)
        assert all(d.is_home_work_home for d in drivers)

    def test_shift_lengths_are_around_four_hours(self):
        drivers = generate_drivers(200, seed=4)
        mean_hours = sum(d.working_duration_s for d in drivers) / len(drivers) / 3600.0
        assert 2.5 <= mean_hours <= 5.5

    def test_working_windows_are_positive(self):
        for driver in generate_drivers(100, seed=6):
            assert driver.end_ts > driver.start_ts


class TestGenerateFromTrips:
    def test_windows_overlap_trip_span(self):
        trips = generate_trace(trip_count=100, seed=7)
        generator = DriverScheduleGenerator(DriverGenerationConfig(seed=8))
        drivers = generator.generate_from_trips(trips, count=40)
        assert len(drivers) == 40
        span_start = min(t.start_ts for t in trips)
        span_end = max(t.end_ts for t in trips)
        for driver in drivers:
            assert driver.start_ts >= span_start - 1e-6
            assert driver.start_ts <= span_end + 1e-6

    def test_default_count_matches_distinct_trace_drivers(self):
        trips = generate_trace(trip_count=60, seed=9)
        generator = DriverScheduleGenerator(DriverGenerationConfig(seed=10))
        drivers = generator.generate_from_trips(trips)
        assert len(drivers) == len({t.driver_id for t in trips})

    def test_empty_trips_falls_back_to_plain_generation(self):
        generator = DriverScheduleGenerator(DriverGenerationConfig(seed=11))
        assert generator.generate_from_trips([], count=5) != []
        assert len(generator.generate_from_trips([], count=5)) == 5

    def test_working_model_respected(self):
        trips = generate_trace(trip_count=40, seed=12)
        generator = DriverScheduleGenerator(
            DriverGenerationConfig(seed=13, working_model=WorkingModel.HOME_WORK_HOME)
        )
        drivers = generator.generate_from_trips(trips, count=10)
        assert all(d.is_home_work_home for d in drivers)
