"""Tests for repro.trace.cleaning."""

import pytest

from repro.geo import PORTO, GeoPoint
from repro.trace import (
    CleaningConfig,
    TripRecord,
    clean_trips,
    first_n_by_time,
    generate_trace,
    sample_day,
)

A = GeoPoint(41.15, -8.61)
B = A.offset_km(0.0, 5.0)


def trip(trip_id, start=0.0, duration=600.0, distance=5.0, origin=A, destination=B):
    return TripRecord(trip_id, "d", start, start + duration, origin, destination, distance)


class TestCleanTrips:
    def test_good_trips_kept(self):
        trips = [trip(f"t{i}", start=i * 1000.0) for i in range(5)]
        kept, report = clean_trips(trips)
        assert len(kept) == 5
        assert report.kept == 5
        assert report.dropped_total == 0

    def test_duration_filter(self):
        trips = [trip("short", duration=10.0), trip("long", duration=4 * 3600.0), trip("ok")]
        kept, report = clean_trips(trips)
        assert [t.trip_id for t in kept] == ["ok"]
        assert report.dropped_duration == 2

    def test_distance_filter(self):
        trips = [trip("tiny", distance=0.05), trip("huge", distance=500.0), trip("ok")]
        kept, report = clean_trips(trips)
        assert [t.trip_id for t in kept] == ["ok"]
        assert report.dropped_distance == 2

    def test_speed_filter(self):
        # 50 km in 10 minutes = 300 km/h.
        trips = [trip("rocket", duration=600.0, distance=50.0), trip("ok")]
        kept, report = clean_trips(trips)
        assert [t.trip_id for t in kept] == ["ok"]
        assert report.dropped_speed == 1

    def test_bounding_box_filter(self):
        outside = GeoPoint(40.0, -8.61)
        trips = [trip("away", origin=outside), trip("ok")]
        kept, report = clean_trips(trips, CleaningConfig(bounding_box=PORTO))
        assert [t.trip_id for t in kept] == ["ok"]
        assert report.dropped_outside_area == 1

    def test_duplicate_filter(self):
        trips = [trip("same"), trip("same"), trip("other")]
        kept, report = clean_trips(trips)
        assert len(kept) == 2
        assert report.dropped_duplicate == 1

    def test_report_accounting_consistent(self):
        trips = [trip("a"), trip("b", duration=5.0), trip("a")]
        kept, report = clean_trips(trips)
        assert report.input_count == 3
        assert report.kept == len(kept)
        assert report.dropped_total == report.input_count - report.kept
        assert sum(
            [
                report.dropped_duration,
                report.dropped_distance,
                report.dropped_speed,
                report.dropped_outside_area,
                report.dropped_duplicate,
            ]
        ) == report.dropped_total
        assert set(report.as_dict()) >= {"input_count", "kept"}

    def test_invalid_config(self):
        with pytest.raises(ValueError):
            CleaningConfig(min_duration_s=100.0, max_duration_s=50.0)
        with pytest.raises(ValueError):
            CleaningConfig(max_speed_kmh=0.0)

    def test_synthetic_trace_mostly_survives_cleaning(self):
        trips = generate_trace(trip_count=300, seed=21)
        kept, _ = clean_trips(trips, CleaningConfig(bounding_box=PORTO))
        assert len(kept) >= 0.9 * len(trips)


class TestSelection:
    def test_sample_day_boundaries(self):
        trips = [trip(f"t{i}", start=i * 3600.0 * 6) for i in range(8)]  # spans 2 days
        day0 = sample_day(trips, 0)
        day1 = sample_day(trips, 1)
        assert len(day0) == 4
        assert len(day1) == 4
        assert {t.trip_id for t in day0}.isdisjoint({t.trip_id for t in day1})

    def test_sample_day_empty_and_invalid(self):
        assert sample_day([], 0) == []
        with pytest.raises(ValueError):
            sample_day([], -1)

    def test_first_n_by_time(self):
        trips = [trip("late", start=100.0), trip("early", start=1.0), trip("mid", start=50.0)]
        assert [t.trip_id for t in first_n_by_time(trips, 2)] == ["early", "mid"]

    def test_first_n_by_time_invalid(self):
        with pytest.raises(ValueError):
            first_n_by_time([], -1)
