"""Tests for repro.trace.records."""

import pytest

from repro.geo import GeoPoint
from repro.trace import TripRecord, shifts_from_trips, slice_by_time

A = GeoPoint(41.15, -8.61)
B = A.offset_km(0.0, 5.0)


def make_trip(trip_id="t1", driver_id="d1", start=0.0, duration=600.0, distance=5.0):
    return TripRecord(
        trip_id=trip_id,
        driver_id=driver_id,
        start_ts=start,
        end_ts=start + duration,
        origin=A,
        destination=B,
        distance_km=distance,
    )


class TestTripRecord:
    def test_basic_properties(self):
        trip = make_trip(duration=600.0, distance=5.0)
        assert trip.duration_s == 600.0
        assert trip.duration_min == pytest.approx(10.0)
        assert trip.average_speed_kmh == pytest.approx(30.0)

    def test_invalid_times_rejected(self):
        with pytest.raises(ValueError):
            TripRecord("t", "d", 100.0, 50.0, A, B, 1.0)

    def test_negative_distance_rejected(self):
        with pytest.raises(ValueError):
            TripRecord("t", "d", 0.0, 10.0, A, B, -1.0)

    def test_zero_duration_speed_is_zero(self):
        trip = TripRecord("t", "d", 0.0, 0.0, A, B, 1.0)
        assert trip.average_speed_kmh == 0.0

    def test_from_polyline(self):
        polyline = [A, A.offset_km(0.0, 1.0), A.offset_km(0.0, 2.0)]
        trip = TripRecord.from_polyline("t", "d", start_ts=100.0, polyline=polyline)
        assert trip.duration_s == pytest.approx(30.0)  # 2 segments x 15 s
        assert trip.distance_km == pytest.approx(2.0, rel=0.01)
        assert trip.origin == polyline[0]
        assert trip.destination == polyline[-1]
        assert len(trip.polyline) == 3

    def test_from_polyline_requires_two_points(self):
        with pytest.raises(ValueError):
            TripRecord.from_polyline("t", "d", 0.0, [A])


class TestShifts:
    def test_shifts_cover_trip_span(self):
        trips = [
            make_trip("t1", "d1", start=100.0, duration=500.0),
            make_trip("t2", "d1", start=2000.0, duration=300.0),
            make_trip("t3", "d2", start=50.0, duration=100.0),
        ]
        shifts = {s.driver_id: s for s in shifts_from_trips(trips)}
        assert set(shifts) == {"d1", "d2"}
        assert shifts["d1"].start_ts == 100.0
        assert shifts["d1"].end_ts == 2300.0
        assert shifts["d1"].trip_count == 2
        assert shifts["d1"].duration_h == pytest.approx(2200.0 / 3600.0)
        assert shifts["d2"].trip_count == 1

    def test_shifts_empty_input(self):
        assert shifts_from_trips([]) == []

    def test_shifts_sorted_by_driver_id(self):
        trips = [make_trip("t1", "z"), make_trip("t2", "a")]
        shifts = shifts_from_trips(trips)
        assert [s.driver_id for s in shifts] == ["a", "z"]


class TestSlicing:
    def test_slice_by_time_half_open_interval(self):
        trips = [make_trip(f"t{i}", start=float(i) * 100.0) for i in range(10)]
        window = slice_by_time(trips, 200.0, 500.0)
        assert [t.trip_id for t in window] == ["t2", "t3", "t4"]

    def test_slice_by_time_invalid_range(self):
        with pytest.raises(ValueError):
            slice_by_time([], 10.0, 5.0)
