"""Tests for the Porto CSV loader (round-tripping synthetic data through it)."""

import json

import pytest

from repro.geo import GeoPoint
from repro.trace import (
    PortoFormatError,
    TripRecord,
    generate_trace,
    iter_porto_rows,
    load_porto_trips,
    parse_polyline,
    parse_row,
    row_to_trip,
    write_porto_csv,
)


def make_row(polyline, missing="False", taxi_id="20000001", timestamp="1372636858"):
    return {
        "TRIP_ID": "1372636858620000589",
        "CALL_TYPE": "C",
        "ORIGIN_CALL": "",
        "ORIGIN_STAND": "",
        "TAXI_ID": taxi_id,
        "TIMESTAMP": timestamp,
        "DAY_TYPE": "A",
        "MISSING_DATA": missing,
        "POLYLINE": json.dumps(polyline),
    }


class TestPolylineParsing:
    def test_parse_polyline_lon_lat_order(self):
        points = parse_polyline("[[-8.61, 41.15], [-8.60, 41.16]]")
        assert points[0] == GeoPoint(41.15, -8.61)
        assert points[1] == GeoPoint(41.16, -8.60)

    def test_parse_polyline_empty(self):
        assert parse_polyline("[]") == []
        assert parse_polyline("") == []

    def test_parse_polyline_invalid_json(self):
        with pytest.raises(PortoFormatError):
            parse_polyline("not json")

    def test_parse_polyline_invalid_element(self):
        with pytest.raises(PortoFormatError):
            parse_polyline("[[1.0]]")


class TestRowParsing:
    def test_parse_row_and_convert(self):
        raw = make_row([[-8.61, 41.15], [-8.605, 41.152], [-8.60, 41.154]])
        row = parse_row(raw)
        assert row.taxi_id == "20000001"
        assert row.missing_data is False
        trip = row_to_trip(row)
        assert isinstance(trip, TripRecord)
        assert trip.driver_id == "20000001"
        assert trip.start_ts == 1372636858.0
        assert trip.duration_s == pytest.approx(30.0)
        assert trip.distance_km > 0.0

    def test_missing_data_row_dropped(self):
        raw = make_row([[-8.61, 41.15], [-8.60, 41.16]], missing="True")
        assert row_to_trip(parse_row(raw)) is None

    def test_short_polyline_dropped(self):
        raw = make_row([[-8.61, 41.15]])
        assert row_to_trip(parse_row(raw)) is None

    def test_missing_column_raises(self):
        raw = make_row([[-8.61, 41.15], [-8.60, 41.16]])
        del raw["TAXI_ID"]
        with pytest.raises(PortoFormatError):
            parse_row(raw)

    def test_bad_timestamp_raises(self):
        raw = make_row([[-8.61, 41.15], [-8.60, 41.16]], timestamp="not-a-number")
        with pytest.raises(PortoFormatError):
            parse_row(raw)


class TestCsvRoundTrip:
    def test_write_and_reload(self, tmp_path):
        trips = generate_trace(trip_count=25, seed=9)
        path = tmp_path / "porto.csv"
        written = write_porto_csv(trips, path)
        assert written == 25

        loaded = load_porto_trips(path)
        assert len(loaded) == 25
        # Origins/destinations survive the round trip.
        for original, reloaded in zip(trips, loaded):
            assert reloaded.origin.lat == pytest.approx(original.origin.lat, abs=1e-6)
            assert reloaded.origin.lon == pytest.approx(original.origin.lon, abs=1e-6)
            assert reloaded.destination.lat == pytest.approx(original.destination.lat, abs=1e-6)
            assert int(reloaded.start_ts) == int(original.start_ts)

    def test_load_with_limit(self, tmp_path):
        trips = generate_trace(trip_count=30, seed=9)
        path = tmp_path / "porto.csv"
        write_porto_csv(trips, path)
        assert len(load_porto_trips(path, limit=7)) == 7

    def test_iter_rows_streams_all(self, tmp_path):
        trips = generate_trace(trip_count=12, seed=9)
        path = tmp_path / "porto.csv"
        write_porto_csv(trips, path)
        assert sum(1 for _ in iter_porto_rows(path)) == 12
