"""Tests for repro.trace.powerlaw."""

import random

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.trace import (
    PowerLawDistribution,
    complementary_cdf,
    fit_power_law_mle,
    tail_heaviness,
)


class TestPowerLawDistribution:
    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            PowerLawDistribution(alpha=1.0, x_min=1.0)
        with pytest.raises(ValueError):
            PowerLawDistribution(alpha=2.0, x_min=0.0)
        with pytest.raises(ValueError):
            PowerLawDistribution(alpha=2.0, x_min=5.0, x_max=4.0)

    def test_samples_respect_support(self):
        dist = PowerLawDistribution(alpha=2.5, x_min=2.0, x_max=100.0)
        rng = random.Random(0)
        samples = dist.sample_many(rng, 2000)
        assert min(samples) >= 2.0
        assert max(samples) <= 100.0

    def test_unbounded_samples_above_x_min(self):
        dist = PowerLawDistribution(alpha=3.0, x_min=1.0)
        rng = random.Random(1)
        assert all(s >= 1.0 for s in dist.sample_many(rng, 500))

    def test_sample_many_count_validation(self):
        dist = PowerLawDistribution(alpha=2.5, x_min=1.0)
        with pytest.raises(ValueError):
            dist.sample_many(random.Random(0), -1)

    def test_empirical_mean_matches_analytic(self):
        dist = PowerLawDistribution(alpha=2.6, x_min=3.0, x_max=7200.0)
        rng = random.Random(2)
        samples = dist.sample_many(rng, 20000)
        assert np.mean(samples) == pytest.approx(dist.mean(), rel=0.08)

    def test_unbounded_mean_requires_alpha_above_two(self):
        with pytest.raises(ValueError):
            PowerLawDistribution(alpha=1.8, x_min=1.0).mean()

    def test_pdf_zero_outside_support(self):
        dist = PowerLawDistribution(alpha=2.5, x_min=2.0, x_max=10.0)
        assert dist.pdf(1.0) == 0.0
        assert dist.pdf(11.0) == 0.0
        assert dist.pdf(3.0) > 0.0

    def test_pdf_integrates_to_one(self):
        dist = PowerLawDistribution(alpha=2.5, x_min=1.0, x_max=50.0)
        xs = np.linspace(1.0, 50.0, 20000)
        integral = np.trapezoid([dist.pdf(x) for x in xs], xs)
        assert integral == pytest.approx(1.0, rel=0.01)

    def test_determinism_given_seed(self):
        dist = PowerLawDistribution(alpha=2.5, x_min=1.0, x_max=100.0)
        a = dist.sample_many(random.Random(42), 10)
        b = dist.sample_many(random.Random(42), 10)
        assert a == b


class TestFitting:
    def test_mle_recovers_exponent(self):
        true = PowerLawDistribution(alpha=2.4, x_min=5.0)
        rng = random.Random(3)
        samples = true.sample_many(rng, 30000)
        fitted = fit_power_law_mle(samples, x_min=5.0)
        assert fitted.alpha == pytest.approx(2.4, abs=0.1)

    def test_mle_requires_enough_samples(self):
        with pytest.raises(ValueError):
            fit_power_law_mle([1.0])

    def test_mle_rejects_degenerate_samples(self):
        with pytest.raises(ValueError):
            fit_power_law_mle([2.0, 2.0, 2.0], x_min=2.0)

    def test_mle_infers_x_min(self):
        samples = [1.0, 2.0, 4.0, 8.0, 16.0]
        fitted = fit_power_law_mle(samples)
        assert fitted.x_min == 1.0

    @given(st.floats(min_value=2.1, max_value=3.5))
    @settings(max_examples=20, deadline=None)
    def test_mle_roundtrip_property(self, alpha):
        dist = PowerLawDistribution(alpha=alpha, x_min=1.0)
        samples = dist.sample_many(random.Random(11), 8000)
        fitted = fit_power_law_mle(samples, x_min=1.0)
        assert fitted.alpha == pytest.approx(alpha, rel=0.10)


class TestDescriptiveStats:
    def test_complementary_cdf_is_decreasing(self):
        values, survival = complementary_cdf([1.0, 2.0, 3.0, 4.0, 100.0])
        assert list(values) == sorted(values)
        assert all(survival[i] >= survival[i + 1] for i in range(len(survival) - 1))
        assert survival[0] == pytest.approx(1.0)

    def test_complementary_cdf_requires_positive_samples(self):
        with pytest.raises(ValueError):
            complementary_cdf([0.0, -1.0])

    def test_tail_heaviness_orders_distributions(self):
        rng = random.Random(5)
        heavy = PowerLawDistribution(alpha=2.2, x_min=1.0).sample_many(rng, 5000)
        light = [rng.gauss(10.0, 1.0) for _ in range(5000)]
        assert tail_heaviness(heavy) > tail_heaviness(light)

    def test_tail_heaviness_requires_samples(self):
        with pytest.raises(ValueError):
            tail_heaviness([])
