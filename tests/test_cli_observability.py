"""The CLI's observability surface: --trace-out, --log-level, parser wiring."""

import json
import logging

import pytest

from repro.cli import build_parser, main
from repro.obs import trace as obs_trace
from repro.obs import logs as obs_logs


@pytest.fixture(scope="module")
def market_path(tmp_path_factory):
    path = tmp_path_factory.mktemp("cli-obs") / "market.json"
    assert main(
        ["build-market", "--trips", "30", "--drivers", "8", "--seed", "5",
         "--output", str(path)]
    ) == 0
    return path


@pytest.fixture(autouse=True)
def _clean_obs_state():
    yield
    obs_trace.disable_tracing()
    root = logging.getLogger(obs_logs.ROOT_LOGGER)
    for handler in list(root.handlers):
        if getattr(handler, "_repro_handler", False):
            root.removeHandler(handler)
    root.propagate = True
    root.setLevel(logging.NOTSET)
    obs_logs._configured_level = None


class TestParser:
    def test_trace_out_on_solve_scenario_run_and_serve(self):
        parser = build_parser()
        assert parser.parse_args(
            ["solve", "--market", "m", "--trace-out", "t.json"]
        ).trace_out == "t.json"
        assert parser.parse_args(
            ["scenario", "run", "--name", "x", "--trace-out", "t.json"]
        ).trace_out == "t.json"
        args = parser.parse_args(
            ["serve", "--trace-out", "t.json", "--metrics-port", "9100"]
        )
        assert args.trace_out == "t.json"
        assert args.metrics_port == 9100

    def test_log_level_is_global(self):
        args = build_parser().parse_args(["--log-level", "debug", "info", "--market", "m"])
        assert args.log_level == "debug"

    def test_unknown_log_level_is_a_clean_error(self, market_path):
        with pytest.raises(SystemExit):
            main(["--log-level", "chatty", "info", "--market", str(market_path)])


class TestTraceOut:
    def test_streamed_solve_writes_loadable_trace(self, market_path, tmp_path, capsys):
        trace_path = tmp_path / "trace.json"
        code = main(
            ["solve", "--market", str(market_path), "--algorithm", "batched",
             "--stream", "--executor", "process", "--grid", "2x2",
             "--trace-out", str(trace_path)]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert f"trace written to {trace_path}" in out
        payload = json.loads(trace_path.read_text())
        events = payload["traceEvents"]
        assert events
        names = {event["name"] for event in events}
        # Coordinator-side containers and worker-side hot-path leaves both
        # made it into one file.
        assert {"stream", "shard_stream", "candidates", "merge"} <= names
        # Worker spans sit on their own (os pid) tracks, coordinator on 0.
        assert len({event["pid"] for event in events}) >= 2
        for event in events:
            assert event["ph"] == "X"
            assert event["dur"] >= 0.0

    def test_offline_solve_traces_exact_tier(self, market_path, tmp_path, capsys):
        trace_path = tmp_path / "lp.json"
        code = main(
            ["solve", "--market", str(market_path), "--algorithm", "lp",
             "--trace-out", str(trace_path)]
        )
        assert code == 0
        names = {
            event["name"]
            for event in json.loads(trace_path.read_text())["traceEvents"]
        }
        assert "lp" in names
        assert obs_trace.active_recorder() is None  # switch restored

    def test_no_trace_out_means_no_recorder(self, market_path):
        assert main(["solve", "--market", str(market_path)]) == 0
        assert obs_trace.active_recorder() is None


class TestLogLevel:
    def test_log_level_configures_repro_tree(self, market_path):
        assert main(
            ["--log-level", "debug", "solve", "--market", str(market_path)]
        ) == 0
        assert obs_logs.configured_level() == logging.DEBUG
        root = logging.getLogger(obs_logs.ROOT_LOGGER)
        assert any(
            getattr(handler, "_repro_handler", False) for handler in root.handlers
        )

    def test_env_fallback(self, market_path, monkeypatch):
        monkeypatch.setenv(obs_logs.ENV_VAR, "warning")
        assert main(["solve", "--market", str(market_path)]) == 0
        assert obs_logs.configured_level() == logging.WARNING
