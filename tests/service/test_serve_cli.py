"""``repro serve``: the CLI front door of the dispatch service.

The in-process tests pin the happy path (soak completes, parity verdict,
report JSON); the subprocess test is the SIGINT-path regression of the
lifecycle bugfix sweep — Ctrl-C mid-soak must exit 130 with every worker
process reaped, never orphaning a warm pool.
"""

import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.cli import main

REPO_ROOT = Path(__file__).resolve().parents[2]


class TestServeCommand:
    def test_small_soak_completes_with_parity(self, capsys, tmp_path):
        report_path = tmp_path / "soak.json"
        code = main(
            [
                "serve",
                "--orders", "600",
                "--cities", "2",
                "--epochs", "2",
                "--drivers", "8",
                "--executor", "serial",
                "--parity-epochs", "-1",
                "--report-json", str(report_path),
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "SERVE_READY" in out
        assert "parity (service == replay): ok over 4 epoch(s)" in out
        payload = json.loads(report_path.read_text())
        assert payload["orders"] == 600
        assert payload["parity_ok"] is True
        assert payload["dispatch_latency"]["count"] == 600
        assert payload["dispatch_latency"]["p99_ms"] >= payload["dispatch_latency"]["p50_ms"]

    def test_bad_grid_rejected(self):
        with pytest.raises(SystemExit):
            main(["serve", "--orders", "10", "--grid", "bogus"])


class TestServeSigint:
    def test_sigint_mid_soak_exits_130_and_reaps_workers(self):
        """Satellite 3's regression: interrupt a live process-pool soak and
        require a clean exit code plus zero surviving worker processes."""
        env = dict(os.environ)
        env["PYTHONPATH"] = str(REPO_ROOT / "src")
        proc = subprocess.Popen(
            [
                sys.executable, "-m", "repro", "serve",
                "--orders", "500000",  # far more than can finish pre-SIGINT
                "--cities", "2",
                "--epochs", "2",
                "--executor", "process",
                "--workers", "2",
            ],
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            text=True,
            env=env,
            cwd=str(REPO_ROOT),
        )
        try:
            marker = proc.stdout.readline()
            assert marker.startswith("SERVE_READY"), marker
            worker_pids = [
                int(pid)
                for pid in marker.split("workers=")[1].strip().split(",")
                if pid not in ("", "-")
            ]
            assert worker_pids, "process executor announced no workers"
            time.sleep(0.8)  # let the flood actually start
            proc.send_signal(signal.SIGINT)
            _out, err = proc.communicate(timeout=60)
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.communicate()
        assert proc.returncode == 130, err
        assert "worker pools shut down" in err
        deadline = time.time() + 10.0
        while time.time() < deadline:
            alive = [pid for pid in worker_pids if _pid_alive(pid)]
            if not alive:
                break
            time.sleep(0.2)
        assert not alive, f"orphaned worker processes survived SIGINT: {alive}"


def _pid_alive(pid: int) -> bool:
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:
        return True
    return True
