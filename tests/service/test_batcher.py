"""The window batcher: publish-ordered cuts, max-batch slicing, watermark."""

import pytest

from repro.service import WindowBatcher

from ..conftest import build_random_instance


@pytest.fixture(scope="module")
def tasks():
    instance = build_random_instance(task_count=40, driver_count=8, seed=9)
    return sorted(instance.tasks, key=lambda t: t.publish_ts)


WINDOW_S = 600.0


def drain(batcher, tasks):
    batches = []
    for task in tasks:
        closed = batcher.push(task)
        if closed is not None:
            batches.append(closed)
    final = batcher.flush()
    if final is not None:
        batches.append(final)
    return batches


class TestWindowCuts:
    def test_batches_partition_the_stream_in_order(self, tasks):
        batches = drain(WindowBatcher(WINDOW_S), tasks)
        flat = [task for batch in batches for task in batch]
        assert flat == list(tasks)
        assert all(batch for batch in batches)

    def test_cuts_happen_at_window_boundaries(self, tasks):
        """Every cut batch spans one dispatch window (no max_batch)."""
        batches = drain(WindowBatcher(WINDOW_S), tasks)
        anchor = tasks[0].publish_ts
        for batch in batches:
            slots = {int((t.publish_ts - anchor) // WINDOW_S) for t in batch}
            assert len(slots) == 1

    def test_matches_stream_schedule_boundaries(self, tasks):
        """Per-window cuts reproduce ``stream_schedule``'s batches exactly
        when the anchor coincides (first task publishable)."""
        from repro.online.batch import stream_schedule

        assert tasks[0].is_publishable
        batches = drain(WindowBatcher(WINDOW_S), tasks)
        expected = stream_schedule(tasks, WINDOW_S)
        assert [list(batch) for batch in batches] == expected

    def test_max_batch_slices_a_flooded_window(self, tasks):
        batcher = WindowBatcher(WINDOW_S, max_batch=3)
        batches = drain(batcher, tasks)
        assert all(len(batch) <= 3 for batch in batches)
        flat = [task for batch in batches for task in batch]
        assert flat == list(tasks)

    def test_counters(self, tasks):
        batcher = WindowBatcher(WINDOW_S)
        for task in tasks[:5]:
            batcher.push(task)
        assert batcher.pushed == 5
        assert batcher.pending <= 5


class TestWatermarkViolations:
    def test_late_order_raises(self, tasks):
        batcher = WindowBatcher(WINDOW_S)
        late, rest = tasks[0], tasks[1:]
        for task in rest:
            batcher.push(task)
        with pytest.raises(ValueError, match="publish order"):
            batcher.push(late)

    def test_equal_timestamps_are_fine(self, tasks):
        """The watermark is non-strict: simultaneous publishes are legal."""
        from dataclasses import replace

        batcher = WindowBatcher(WINDOW_S)
        ts = tasks[0].publish_ts
        twins = [
            replace(task, task_id=f"twin-{i}", publish_ts=ts,
                    start_deadline_ts=ts + 600.0, end_deadline_ts=ts + 1800.0)
            for i, task in enumerate(tasks[:4])
        ]
        for twin in twins:
            assert batcher.push(twin) is None
        assert len(batcher.flush()) == 4

    def test_bad_knobs_raise(self):
        with pytest.raises(ValueError):
            WindowBatcher(0.0)
        with pytest.raises(ValueError):
            WindowBatcher(60.0, max_batch=0)
