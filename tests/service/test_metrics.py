"""Latency recorders and per-city counters."""

import json

from repro.service import CityMetrics, LatencyRecorder


class TestLatencyRecorder:
    def test_empty_summary_is_all_none(self):
        summary = LatencyRecorder().summary()
        assert summary["count"] == 0
        assert summary["p50_ms"] is None
        assert summary["p99_ms"] is None

    def test_percentiles_in_milliseconds(self):
        recorder = LatencyRecorder()
        for value in (0.010, 0.020, 0.030, 0.040, 0.100):
            recorder.record(value)
        assert len(recorder) == 5
        summary = recorder.summary()
        assert summary["count"] == 5
        assert summary["p50_ms"] == 30.0
        assert summary["max_ms"] == 100.0
        assert summary["p50_ms"] <= summary["p99_ms"] <= summary["max_ms"]
        assert recorder.percentile_ms(50) == 30.0

    def test_summary_is_json_serialisable(self):
        recorder = LatencyRecorder()
        recorder.record(0.5)
        json.dumps(recorder.summary())  # numpy floats must not leak through


class TestCityMetrics:
    def test_serve_rate_needs_a_finished_epoch(self):
        metrics = CityMetrics()
        assert metrics.serve_rate is None
        metrics.orders = 100
        assert metrics.serve_rate is None  # no epoch finished yet
        metrics.epochs = 1
        metrics.served = 40
        assert metrics.serve_rate == 0.4

    def test_per_shard_append_recorders_are_lazy(self):
        metrics = CityMetrics()
        metrics.record_append(3, 0.002)
        metrics.record_append(3, 0.004)
        metrics.record_append(0, 0.001)
        assert set(metrics.per_shard_append) == {0, 3}
        assert len(metrics.per_shard_append[3]) == 2

    def test_snapshot_is_json_serialisable(self):
        metrics = CityMetrics()
        metrics.orders = 7
        metrics.dispatch.record(0.25)
        metrics.record_append(1, 0.01)
        block = json.loads(json.dumps(metrics.snapshot()))
        assert block["orders"] == 7
        assert block["dispatch_latency"]["count"] == 1
        assert "1" in block["append_latency_per_shard"]
