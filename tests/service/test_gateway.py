"""The dispatch service end to end: ingestion, epochs, parity, teardown.

Each test drives the real asyncio gateway with ``asyncio.run`` — no mocks:
orders go through the ingestion queue, the batcher, the per-city streaming
session and (where parametrised) a real worker pool.
"""

import asyncio

import pytest

from repro.distributed import DistributedCoordinator, SpatialPartitioner
from repro.distributed.pool import _SESSIONS
from repro.geo import PORTO
from repro.market.instance import MarketInstance
from repro.online.batch import BatchConfig
from repro.service import DispatchService, replay_ingested

from ..conftest import build_random_instance

WINDOW_S = 600.0
CONFIG = BatchConfig(window_s=WINDOW_S)


@pytest.fixture(scope="module")
def instance():
    return build_random_instance(task_count=60, driver_count=15, seed=37)


@pytest.fixture(scope="module")
def second_instance():
    return build_random_instance(task_count=50, driver_count=12, seed=38)


def ordered_tasks(instance):
    return sorted(instance.tasks, key=lambda t: t.publish_ts)


def fingerprint(result):
    return (
        result.solution.assignment(),
        tuple((p.driver_id, p.task_indices, p.profit) for p in result.solution.plans),
        result.rejected_tasks,
    )


async def feed_city(service, city, tasks):
    return [await service.submit(city, task) for task in tasks]


class TestServiceOutcomes:
    @pytest.mark.parametrize("executor", ["serial", "thread", "process"])
    def test_service_matches_solve_stream(self, instance, executor):
        """The headline: orders trickled through the gateway one at a time
        produce the exact merged outcome of a direct ``solve_stream``."""

        async def scenario():
            async with DispatchService() as service:
                service.register_city(
                    "porto", instance.drivers, executor=executor, workers=2,
                    config=CONFIG,
                )
                receipts = await feed_city(
                    service, "porto", ordered_tasks(instance)
                )
                results = await service.finish()
                return receipts, results["porto"]

        receipts, served = asyncio.run(scenario())
        with DistributedCoordinator(
            SpatialPartitioner(PORTO, 2, 2), executor="serial"
        ) as coordinator:
            reference = coordinator.solve_stream(
                MarketInstance(
                    drivers=instance.drivers,
                    tasks=tuple(ordered_tasks(instance)),
                    cost_model=instance.cost_model,
                ),
                config=CONFIG,
            )
        assert fingerprint(served) == fingerprint(reference)
        assert all(r.done for r in receipts)
        assert all(r.latency_s >= 0.0 for r in receipts)

    def test_parity_contract_15_replay(self, instance):
        """Contract 15: service outcome == offline replay of the batches the
        service itself recorded."""

        async def scenario():
            async with DispatchService() as service:
                runtime = service.register_city(
                    "porto", instance.drivers, config=CONFIG
                )
                await feed_city(service, "porto", ordered_tasks(instance))
                results = await service.finish()
                return runtime, results["porto"]

        runtime, served = asyncio.run(scenario())
        replayed = replay_ingested(runtime, epoch=0)
        assert fingerprint(served) == fingerprint(replayed)

    def test_multi_city_isolation(self, instance, second_instance):
        """Two tenants on one gateway: each city's outcome is identical to
        serving that city alone — tenancy adds no cross-talk."""

        async def together():
            async with DispatchService() as service:
                service.register_city("porto-a", instance.drivers, config=CONFIG)
                service.register_city(
                    "porto-b", second_instance.drivers, config=CONFIG
                )
                a = ordered_tasks(instance)
                b = ordered_tasks(second_instance)
                # Interleave the two cities' floods.
                for i in range(max(len(a), len(b))):
                    if i < len(a):
                        await service.submit("porto-a", a[i])
                    if i < len(b):
                        await service.submit("porto-b", b[i])
                return await service.finish()

        async def alone(name, inst):
            async with DispatchService() as service:
                service.register_city(name, inst.drivers, config=CONFIG)
                await feed_city(service, name, ordered_tasks(inst))
                return (await service.finish())[name]

        both = asyncio.run(together())
        only_a = asyncio.run(alone("porto-a", instance))
        only_b = asyncio.run(alone("porto-b", second_instance))
        assert fingerprint(both["porto-a"]) == fingerprint(only_a)
        assert fingerprint(both["porto-b"]) == fingerprint(only_b)

    def test_epoch_rotation_on_one_warm_pool(self, instance):
        """rotate() closes an epoch and reopens on the same pool; each epoch
        replays independently (parity per epoch)."""

        async def scenario():
            async with DispatchService() as service:
                runtime = service.register_city(
                    "porto", instance.drivers, executor="process", workers=2,
                    config=CONFIG,
                )
                pool = runtime.coordinator._stream_pool
                tasks = ordered_tasks(instance)
                half = len(tasks) // 2
                await feed_city(service, "porto", tasks[:half])
                first = await service.rotate("porto")
                assert runtime.coordinator._stream_pool is pool  # warm reuse
                await feed_city(service, "porto", tasks[half:])
                final = (await service.finish())["porto"]
                return runtime, first, final

        runtime, first, final = asyncio.run(scenario())
        assert runtime.metrics.epochs == 2
        assert fingerprint(first) == fingerprint(replay_ingested(runtime, 0))
        assert fingerprint(final) == fingerprint(replay_ingested(runtime, 1))


class TestBackpressureAndHealth:
    def test_backpressure_pauses_ingestion(self, instance):
        """A depth-1 threshold on a slow pooled shard must trip the barrier
        (under the serial policy it never can)."""

        async def scenario(executor, depth):
            async with DispatchService(backpressure_depth=depth) as service:
                service.register_city(
                    "porto", instance.drivers, executor=executor, workers=2,
                    config=CONFIG, max_batch=4,
                )
                await feed_city(service, "porto", ordered_tasks(instance))
                await service.finish()
                return service.runtimes()["porto"].metrics.backpressure_events

        assert asyncio.run(scenario("thread", 1)) > 0
        assert asyncio.run(scenario("serial", 1)) == 0

    def test_health_snapshot_shape(self, instance):
        async def scenario():
            async with DispatchService() as service:
                service.register_city("porto", instance.drivers, config=CONFIG)
                await feed_city(service, "porto", ordered_tasks(instance))
                mid = service.health()
                await service.finish()
                done = service.health()
                return mid, done

        mid, done = asyncio.run(scenario())
        assert mid["status"] == "ok"
        city = mid["cities"]["porto"]
        # Mid-flood, every order is either still on the ingest queue or
        # already counted by the city.
        assert mid["ingest_queue_depth"] + city["orders"] == 60
        assert "shard_queue_depth" in city
        assert city["dispatch_latency"]["count"] >= 0
        assert done["cities"]["porto"]["orders"] == 60
        assert done["cities"]["porto"]["serve_rate"] is not None

    def test_unknown_city_fails_fast(self, instance):
        async def scenario():
            async with DispatchService() as service:
                service.register_city("porto", instance.drivers, config=CONFIG)
                with pytest.raises(KeyError, match="unknown city"):
                    await service.submit("atlantis", instance.tasks[0])

        asyncio.run(scenario())

    def test_duplicate_city_rejected(self, instance):
        async def scenario():
            async with DispatchService() as service:
                service.register_city("porto", instance.drivers, config=CONFIG)
                with pytest.raises(ValueError, match="already registered"):
                    service.register_city("porto", instance.drivers, config=CONFIG)

        asyncio.run(scenario())


class TestTeardown:
    def test_aexit_discards_worker_sessions(self, instance):
        """Leaving the service without finish() must not leak sessions into
        the (in-process, for serial) registry — the service-shutdown error
        path of the abandoned-stream bugfix."""
        before = len(_SESSIONS)

        async def scenario():
            async with DispatchService() as service:
                service.register_city("porto", instance.drivers, config=CONFIG)
                await feed_city(service, "porto", ordered_tasks(instance)[:10])
                assert len(_SESSIONS) > before  # live sessions resident
                # no finish(): __aexit__ must clean up

        asyncio.run(scenario())
        assert len(_SESSIONS) == before

    def test_aexit_leaves_no_child_processes(self, instance):
        import multiprocessing

        async def scenario():
            async with DispatchService() as service:
                service.register_city(
                    "porto", instance.drivers, executor="process", workers=2,
                    config=CONFIG,
                )
                await feed_city(service, "porto", ordered_tasks(instance)[:10])
                assert multiprocessing.active_children()  # workers live

        asyncio.run(scenario())
        assert multiprocessing.active_children() == []

    def test_submit_after_shutdown_raises(self, instance):
        async def scenario():
            service = DispatchService()
            async with service:
                service.register_city("porto", instance.drivers, config=CONFIG)
            with pytest.raises(RuntimeError, match="shut down"):
                await service.submit("porto", instance.tasks[0])

        asyncio.run(scenario())

    def test_ingestion_failure_is_surfaced(self, instance):
        """A poisoned ingest (out-of-order publish) fails finish() with the
        original error chained, and poisons later submits."""
        tasks = ordered_tasks(instance)

        async def scenario():
            async with DispatchService() as service:
                service.register_city("porto", instance.drivers, config=CONFIG)
                await service.submit("porto", tasks[-1])  # latest first
                await service.submit("porto", tasks[0])  # violates watermark
                with pytest.raises(RuntimeError, match="ingestion failed") as info:
                    await service.finish()
                assert isinstance(info.value.__cause__, ValueError)
                with pytest.raises(RuntimeError, match="ingestion failed"):
                    await service.submit("porto", tasks[1])

        asyncio.run(scenario())
