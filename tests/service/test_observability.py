"""Service observability: registry schema, /metrics endpoint, health schema,
the bounded latency recorder, and counter monotonicity across epochs."""

import asyncio
import json
import random
import urllib.request

import pytest

from repro.obs import render_prometheus, start_http_server
from repro.online.batch import BatchConfig
from repro.service import DispatchService
from repro.service.metrics import BUCKET_BOUNDS_S, CityMetrics, LatencyRecorder

from ..conftest import build_random_instance

CONFIG = BatchConfig(window_s=600.0)

#: Key schema pinned for downstream dashboards (don't rename silently).
HEALTH_KEYS = {"status", "ingest_queue_depth", "cities"}
SNAPSHOT_KEYS = {
    "orders", "batches", "epochs", "backpressure_events",
    "serve_rate", "dispatch_latency", "append_latency_per_shard",
}
CITY_KEYS = SNAPSHOT_KEYS | {"shard_queue_depth", "open_orders"}
SUMMARY_KEYS = {"count", "p50_ms", "p99_ms", "mean_ms", "max_ms"}


@pytest.fixture(scope="module")
def instance():
    return build_random_instance(task_count=60, driver_count=15, seed=39)


def ordered_tasks(instance):
    return sorted(instance.tasks, key=lambda t: t.publish_ts)


class TestBoundedLatencyRecorder:
    def test_exact_stats_beyond_reservoir_capacity(self):
        recorder = LatencyRecorder()
        rng = random.Random(7)
        samples = [rng.uniform(0.0, 2.0) for _ in range(LatencyRecorder.CAPACITY * 3)]
        for value in samples:
            recorder.record(value)
        summary = recorder.summary()
        assert len(recorder) == len(samples)
        assert summary["count"] == len(samples)
        assert summary["max_ms"] == pytest.approx(max(samples) * 1000.0)
        assert summary["mean_ms"] == pytest.approx(
            sum(samples) / len(samples) * 1000.0
        )

    def test_memory_is_bounded(self):
        recorder = LatencyRecorder()
        for _ in range(LatencyRecorder.CAPACITY * 3):
            recorder.record(0.01)
        assert len(recorder._reservoir) <= LatencyRecorder.CAPACITY

    def test_bucket_counts_sum_to_exact_count(self):
        recorder = LatencyRecorder()
        rng = random.Random(11)
        for _ in range(10_000):
            recorder.record(rng.uniform(0.0, 20.0))
        counts = recorder.bucket_counts()
        assert len(counts) == len(BUCKET_BOUNDS_S) + 1  # +Inf slot
        assert sum(counts) == len(recorder) == 10_000

    def test_summary_keys_unchanged(self):
        recorder = LatencyRecorder()
        recorder.record(0.05)
        assert set(recorder.summary()) == SUMMARY_KEYS

    def test_reservoir_sampling_is_deterministic(self):
        a, b = LatencyRecorder(), LatencyRecorder()
        rng = random.Random(3)
        samples = [rng.uniform(0.0, 1.0) for _ in range(20_000)]
        for value in samples:
            a.record(value)
            b.record(value)
        assert a.summary() == b.summary()

    def test_percentiles_track_distribution(self):
        recorder = LatencyRecorder()
        rng = random.Random(5)
        for _ in range(50_000):
            recorder.record(rng.uniform(0.0, 1.0))
        summary = recorder.summary()
        # Uniform(0,1): p50 ~ 500ms, p99 ~ 990ms; the reservoir is 4096
        # samples so allow a loose tolerance.
        assert summary["p50_ms"] == pytest.approx(500.0, abs=50.0)
        assert summary["p99_ms"] == pytest.approx(990.0, abs=30.0)


class TestHealthSchema:
    def test_snapshot_and_health_key_schema(self, instance):
        async def scenario():
            async with DispatchService() as service:
                service.register_city("porto", instance.drivers, config=CONFIG)
                for task in ordered_tasks(instance):
                    await service.submit("porto", task)
                await service.finish()
                return service.health()

        health = asyncio.run(scenario())
        assert set(health) == HEALTH_KEYS
        assert health["status"] == "ok"
        city = health["cities"]["porto"]
        assert CITY_KEYS <= set(city)  # transport key is pool-dependent
        assert set(city["dispatch_latency"]) == SUMMARY_KEYS
        json.dumps(health)  # endpoint-serialisable

    def test_city_metrics_snapshot_schema(self):
        snapshot = CityMetrics().snapshot()
        assert set(snapshot) == SNAPSHOT_KEYS
        json.dumps(snapshot)


class TestServiceRegistry:
    COUNTER_NAMES = (
        "repro_orders_total", "repro_batches_total", "repro_epochs_total",
        "repro_served_total", "repro_backpressure_events_total",
    )

    def _scrape(self, registry):
        """Collect and copy counter values out (metrics are live objects)."""
        label = (("city", "porto"),)
        collected = registry.collect()
        return {name: collected[name][2][label].value for name in self.COUNTER_NAMES}

    def _run(self, instance, scrapes):
        """Run a 2-epoch soak-let, scraping after each epoch; returns the
        final rendered exposition."""

        async def scenario():
            async with DispatchService() as service:
                service.register_city("porto", instance.drivers, config=CONFIG)
                registry = service.metrics_registry()
                tasks = ordered_tasks(instance)
                half = len(tasks) // 2
                for task in tasks[:half]:
                    await service.submit("porto", task)
                await service.rotate("porto")
                scrapes.append(self._scrape(registry))
                for task in tasks[half:]:
                    await service.submit("porto", task)
                await service.finish()
                scrapes.append(self._scrape(registry))
                return render_prometheus(registry)

        return asyncio.run(scenario())

    def test_counters_monotone_across_epochs(self, instance):
        scrapes = []
        self._run(instance, scrapes)
        first, second = scrapes
        for name in self.COUNTER_NAMES:
            assert second[name] >= first[name], name
        assert second["repro_orders_total"] == len(instance.tasks)
        assert second["repro_epochs_total"] == 2

    def test_exposition_parses_and_histograms_are_consistent(self, instance):
        text = self._run(instance, [])
        families = {}
        for line in text.splitlines():
            if line.startswith("#"):
                parts = line.split()
                assert parts[1] in ("HELP", "TYPE")
                continue
            name_part, value = line.rsplit(" ", 1)
            float(value)  # every sample value parses
            families.setdefault(name_part.split("{")[0], []).append(float(value))
        # histogram: +Inf bucket == _count for the dispatch latency family
        buckets = families["repro_dispatch_latency_seconds_bucket"]
        count = families["repro_dispatch_latency_seconds_count"][0]
        assert buckets == sorted(buckets)
        assert buckets[-1] == count
        assert count > 0


class TestMetricsEndpoint:
    def test_scrape_live_service(self, instance):
        def fetch(port, path):
            with urllib.request.urlopen(
                f"http://127.0.0.1:{port}{path}", timeout=5
            ) as response:
                return response.status, response.read()

        async def scenario():
            async with DispatchService() as service:
                service.register_city("porto", instance.drivers, config=CONFIG)
                registry = service.metrics_registry()
                server = await start_http_server(
                    lambda: registry, health_fn=service.health, port=0
                )
                port = server.sockets[0].getsockname()[1]
                loop = asyncio.get_running_loop()
                try:
                    for task in ordered_tasks(instance):
                        await service.submit("porto", task)
                    await service.finish()
                    status, body = await loop.run_in_executor(
                        None, fetch, port, "/metrics"
                    )
                    health_status, health_body = await loop.run_in_executor(
                        None, fetch, port, "/health"
                    )
                finally:
                    server.close()
                    await server.wait_closed()
                return status, body, health_status, health_body

        status, body, health_status, health_body = asyncio.run(scenario())
        assert status == 200
        text = body.decode("utf-8")
        assert 'repro_orders_total{city="porto"}' in text
        assert "repro_dispatch_latency_seconds_bucket" in text
        assert health_status == 200
        payload = json.loads(health_body)
        assert payload["status"] == "ok"
        assert "porto" in payload["cities"]
