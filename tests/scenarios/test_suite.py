"""The scenario suite runner and the built-in library."""

import math

import pytest

from repro.distributed import PersistentWorkerPool
from repro.scenarios import (
    BUILTIN_SCENARIOS,
    DemandSurge,
    SupplyShock,
    TravelSlowdown,
    ZoneClosure,
    HotspotMigration,
    get_scenario,
    run_scenario_suite,
    scenario_names,
)

TRIPS, DRIVERS = 70, 10


class TestLibrary:
    def test_at_least_five_builtins_with_descriptions(self):
        names = scenario_names()
        assert len(names) >= 5
        for name in names:
            spec = get_scenario(name)
            assert spec.name == name
            assert spec.description

    def test_every_event_type_is_exercised_by_the_library(self):
        seen = set()
        for spec in BUILTIN_SCENARIOS.values():
            seen.update(type(e) for e in spec.events)
        assert {DemandSurge, ZoneClosure, SupplyShock, TravelSlowdown, HotspotMigration} <= seen

    def test_unknown_name_raises_with_the_available_names(self):
        with pytest.raises(KeyError, match="morning-surge"):
            get_scenario("no-such-city-day")


class TestSuite:
    def test_rows_cover_every_scenario_and_mode(self):
        specs = [
            get_scenario("morning-surge").with_scale(TRIPS, DRIVERS),
            get_scenario("driver-strike").with_scale(TRIPS, DRIVERS),
        ]
        suite = run_scenario_suite(
            specs, solvers=("greedy", "nearest"), stream=True, executor="serial"
        )
        assert suite.scenarios() == ["morning-surge", "driver-strike"]
        for name in suite.scenarios():
            modes = [row.mode for row in suite.rows_for(name)]
            assert modes == ["offline-greedy", "offline-nearest", "stream-batched"]
        for row in suite.rows:
            assert row.shard_skew >= 1.0
            assert 0.0 <= row.serve_rate <= 1.0
            if row.mode.startswith("offline"):
                assert math.isnan(row.mean_wait_s)
            else:
                assert row.mean_wait_s >= 0.0

    def test_render_mentions_every_scenario(self):
        suite = run_scenario_suite(
            [get_scenario("rainy-day").with_scale(TRIPS, DRIVERS)],
            solvers=("greedy",),
            executor="serial",
        )
        text = suite.render()
        assert "rainy-day" in text
        assert "stream-batched" in text

    def test_external_pool_is_reused_and_left_open(self):
        with PersistentWorkerPool(executor="serial") as pool:
            run_scenario_suite(
                [get_scenario("downtown-closure").with_scale(TRIPS, DRIVERS)],
                solvers=("greedy",),
                stream=False,
                pool=pool,
            )
            # The suite must not close a pool it does not own.
            assert pool.submit(0, int, "7").result() == 7

    def test_rejects_unknown_solver(self):
        with pytest.raises(ValueError, match="unknown solver"):
            run_scenario_suite(
                [get_scenario("rainy-day").with_scale(TRIPS, DRIVERS)],
                solvers=("simplex",),
            )

    def test_suite_rows_round_trip_as_dicts(self):
        suite = run_scenario_suite(
            [get_scenario("airport-corridor").with_scale(TRIPS, DRIVERS)],
            solvers=(),
            stream=True,
            executor="serial",
        )
        (row,) = suite.rows
        record = row.as_dict()
        assert record["scenario"] == "airport-corridor"
        assert record["mode"] == "stream-batched"
        assert set(record) >= {
            "serve_rate", "total_value", "total_revenue",
            "mean_wait_s", "shard_skew", "wall_clock_s",
        }


class TestBoundsColumns:
    """Every row of a bounded suite carries the optimality-gap columns the
    benchmarks publish (greedy/lp revenue, Lagrangian bound, gap >= 0)."""

    def test_every_row_carries_the_gap_columns(self):
        suite = run_scenario_suite(
            [get_scenario("morning-surge").with_scale(TRIPS, DRIVERS)],
            solvers=("greedy", "lp"),
            stream=True,
            executor="serial",
        )
        for row in suite.rows:
            assert not math.isnan(row.greedy_revenue)
            assert not math.isnan(row.lp_revenue)
            assert not math.isnan(row.lagrangian_bound)
            assert row.optimality_gap >= 0.0
            assert row.greedy_revenue <= row.lp_revenue + 1e-6
            assert row.lp_revenue <= row.lagrangian_bound + 1e-6
        lp_row = next(r for r in suite.rows if r.mode == "offline-lp")
        assert lp_row.total_value == pytest.approx(lp_row.lp_revenue, rel=1e-9)
        greedy_row = next(r for r in suite.rows if r.mode == "offline-greedy")
        assert greedy_row.total_value == pytest.approx(greedy_row.greedy_revenue, rel=1e-9)

    def test_columns_are_scenario_level_and_identical_across_rows(self):
        suite = run_scenario_suite(
            [get_scenario("rainy-day").with_scale(TRIPS, DRIVERS)],
            solvers=("greedy", "nearest"),
            stream=True,
            executor="serial",
        )
        gaps = {row.optimality_gap for row in suite.rows}
        assert len(gaps) == 1

    def test_bounds_off_leaves_nan_columns(self):
        suite = run_scenario_suite(
            [get_scenario("driver-strike").with_scale(TRIPS, DRIVERS)],
            solvers=("greedy",),
            stream=False,
            bounds=False,
        )
        (row,) = suite.rows
        assert math.isnan(row.optimality_gap)
        record = row.as_dict()
        assert record["optimality_gap"] is None
        assert record["lp_revenue"] is None

    def test_as_dict_serialises_the_gap_columns(self):
        suite = run_scenario_suite(
            [get_scenario("stadium-event").with_scale(TRIPS, DRIVERS)],
            solvers=("auto",),
            stream=False,
        )
        (row,) = suite.rows
        record = row.as_dict()
        assert set(record) >= {
            "greedy_revenue", "lp_revenue", "lagrangian_bound", "optimality_gap",
        }
        assert record["optimality_gap"] >= 0.0

    def test_render_shows_the_gap_column(self):
        suite = run_scenario_suite(
            [get_scenario("airport-corridor").with_scale(TRIPS, DRIVERS)],
            solvers=("lp",),
            stream=False,
        )
        assert "opt_gap" in suite.render()
