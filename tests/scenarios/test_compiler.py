"""Compiler lowering semantics + (spec, seed) determinism.

The hypothesis test is the satellite the ISSUE asks for: over *random*
specs — any mix of events, any seed — compiling twice yields identical
trips, drivers and tasks (checksummed), because compilation is a pure
function of the spec.
"""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geo import TimeVaryingTravelModel, TravelModel
from repro.online.batch import stream_schedule
from repro.online.forecast import publish_slot_of
from repro.scenarios import (
    DemandSurge,
    HotspotMigration,
    ScenarioCompiler,
    ScenarioSpec,
    SpatialFootprint,
    SupplyShock,
    TravelSlowdown,
    ZoneClosure,
    compile_scenario,
)
from repro.scenarios.compiler import SLOT_COUNT

#: A tiny but non-degenerate compile scale for unit tests.
TRIPS, DRIVERS = 60, 8


def tiny(name, events=(), seed=2017, **kwargs):
    kwargs.setdefault("trip_count", TRIPS)
    kwargs.setdefault("driver_count", DRIVERS)
    return ScenarioSpec(name=name, events=tuple(events), seed=seed, **kwargs)


# ----------------------------------------------------------------------
# hypothesis strategies over random specs
# ----------------------------------------------------------------------
def footprints():
    return st.builds(
        lambda s, w, dn, de: SpatialFootprint(
            south=s, west=w, north=min(1.0, s + dn), east=min(1.0, w + de)
        ),
        st.floats(0.0, 0.7),
        st.floats(0.0, 0.7),
        st.floats(0.1, 0.3),
        st.floats(0.1, 0.3),
    )


def windows():
    return st.tuples(st.floats(0.0, 20.0), st.floats(0.5, 4.0)).map(
        lambda pair: (pair[0], min(24.0, pair[0] + pair[1]))
    )


def surges():
    return st.builds(
        lambda window, intensity, footprint: DemandSurge(
            start_hour=window[0], end_hour=window[1],
            intensity=intensity, footprint=footprint,
        ),
        windows(),
        st.floats(1.1, 4.0),
        st.one_of(st.none(), footprints()),
    )


def closures():
    return st.builds(
        lambda window, footprint: ZoneClosure(window[0], window[1], footprint),
        windows(), footprints(),
    )


def shocks():
    return st.builds(
        lambda at, fraction: SupplyShock(at_hour=at, driver_fraction=fraction),
        st.floats(0.0, 24.0),
        st.one_of(st.floats(-0.6, -0.1), st.floats(0.1, 0.6)),
    )


def slowdowns():
    # Half day-level (plain scaled model), half windowed (compiled into a
    # TimeVaryingTravelModel slot profile).
    day_level = st.builds(TravelSlowdown, speed_factor=st.floats(0.6, 1.0))
    windowed = st.builds(
        lambda window, speed, cost: TravelSlowdown(
            speed_factor=speed, cost_factor=cost,
            start_hour=window[0], end_hour=window[1],
        ),
        windows(), st.floats(0.6, 1.0), st.floats(1.0, 1.3),
    )
    return st.one_of(day_level, windowed)


def migrations():
    return st.builds(
        lambda window, src, dst, fraction: HotspotMigration(
            window[0], window[1], src, dst, fraction
        ),
        windows(), footprints(), footprints(), st.floats(0.1, 1.0),
    )


def specs():
    return st.builds(
        lambda events, seed: ScenarioSpec(
            name="random", events=tuple(events),
            trip_count=40, driver_count=5, seed=seed,
        ),
        st.lists(
            st.one_of(surges(), closures(), shocks(), slowdowns(), migrations()),
            max_size=4,
        ),
        st.integers(0, 2**16),
    )


class TestDeterminism:
    @settings(max_examples=15, deadline=None)
    @given(spec=specs())
    def test_random_specs_compile_deterministically(self, spec):
        first = compile_scenario(spec)
        second = compile_scenario(spec)
        assert first.checksum() == second.checksum()
        assert first.trips == second.trips
        assert first.drivers == second.drivers
        assert first.tasks == second.tasks

    def test_seed_changes_the_workload(self):
        base = tiny("seeded")
        assert (
            compile_scenario(base).checksum()
            != compile_scenario(base.with_seed(999)).checksum()
        )

    def test_no_event_spec_matches_default_generator_path(self):
        compiled = compile_scenario(tiny("plain"))
        assert len(compiled.trips) == TRIPS
        assert len(compiled.drivers) == DRIVERS
        assert compiled.instance.task_count == len(compiled.tasks)


class TestDemandSurge:
    def test_slot_weights_scaled_only_in_window(self):
        spec = tiny("surge", [DemandSurge(8.0, 10.0, intensity=3.0)])
        compiler = ScenarioCompiler(spec)
        weights = compiler.slot_weights()
        base = ScenarioCompiler(tiny("plain")).slot_weights()
        for slot in range(len(weights)):
            hour = slot * 24.0 / len(weights)
            if 8.0 <= hour < 10.0:
                assert weights[slot] == pytest.approx(3.0 * base[slot])
            elif hour < 7.75 or hour >= 10.0:
                assert weights[slot] == pytest.approx(base[slot])

    def test_surge_grows_the_trip_volume(self):
        surged = compile_scenario(tiny("surge", [DemandSurge(7.0, 10.0, intensity=3.0)]))
        assert len(surged.trips) > TRIPS

    def test_footprint_concentrates_in_window_pickups(self):
        footprint = SpatialFootprint(0.6, 0.6, 0.9, 0.9)
        spec = tiny(
            "surge-spatial",
            [DemandSurge(8.0, 11.0, intensity=4.0, footprint=footprint)],
            trip_count=400,
        )
        compiled = compile_scenario(spec)
        box = footprint.to_box(spec.region)
        in_window = [
            t for t in compiled.trips if 8.0 * 3600 <= t.start_ts % 86400 < 11.0 * 3600
        ]
        inside = sum(1 for t in in_window if box.contains(t.origin))
        # The surplus 3/4 of surged demand lands in the footprint; the base
        # downtown model rarely puts mass there.
        assert inside / len(in_window) > 0.5


class TestZoneClosure:
    def test_no_in_window_pickup_inside_the_zone(self):
        footprint = SpatialFootprint(0.3, 0.3, 0.7, 0.7)
        spec = tiny("closed", [ZoneClosure(9.0, 17.0, footprint)], trip_count=300)
        compiled = compile_scenario(spec)
        box = footprint.to_box(spec.region)
        for trip in compiled.trips:
            hour = (trip.start_ts % 86400) / 3600.0
            if 9.0 <= hour < 17.0:
                assert not box.contains(trip.origin)

    def test_overlapping_closures_are_enforced_jointly(self):
        """Escaping one closed zone must never land a pickup inside another
        concurrently closed zone (the downtown-biased resample would
        otherwise funnel displaced demand into the core closure)."""
        core = SpatialFootprint(0.30, 0.30, 0.70, 0.70)
        west = SpatialFootprint(0.10, 0.00, 0.90, 0.30)
        spec = tiny(
            "double-closed",
            [ZoneClosure(9.0, 17.0, core), ZoneClosure(9.0, 17.0, west)],
            trip_count=300,
        )
        compiled = compile_scenario(spec)
        core_box = core.to_box(spec.region)
        west_box = west.to_box(spec.region)
        for trip in compiled.trips:
            hour = (trip.start_ts % 86400) / 3600.0
            if 9.0 <= hour < 17.0:
                assert not core_box.contains(trip.origin)
                assert not west_box.contains(trip.origin)


class TestSupplyShock:
    def test_negative_shock_truncates_or_drops(self):
        spec = tiny("strike", [SupplyShock(at_hour=12.0, driver_fraction=-0.5)])
        base = compile_scenario(tiny("strike"))
        shocked = compile_scenario(spec)
        at_s = 12.0 * 3600.0
        delta = round(0.5 * DRIVERS)
        on_road_base = sum(1 for d in base.drivers if d.end_ts > at_s)
        on_road_after = sum(1 for d in shocked.drivers if d.end_ts > at_s)
        assert on_road_base - on_road_after == min(delta, on_road_base)
        assert len(shocked.drivers) <= len(base.drivers)

    def test_positive_shock_adds_fresh_shifts(self):
        spec = tiny(
            "reinforce",
            [SupplyShock(at_hour=18.0, driver_delta=4, duration_hours=3.0)],
        )
        compiled = compile_scenario(spec)
        added = [d for d in compiled.drivers if "shock" in d.driver_id]
        assert len(added) == 4
        for driver in added:
            assert driver.start_ts == 18.0 * 3600.0
            assert driver.end_ts == 21.0 * 3600.0
        assert len(compiled.drivers) == DRIVERS + 4


class TestTravelSlowdown:
    def test_scales_model_and_trace_consistently(self):
        spec = tiny("rain", [TravelSlowdown(speed_factor=0.7, cost_factor=1.1)])
        compiled = compile_scenario(spec)
        model = compiled.instance.cost_model.travel_model
        assert model.speed_kmh == pytest.approx(30.0 * 0.7)
        assert model.cost_per_km == pytest.approx(0.12 * 1.1)
        # Recorded trips slow down too, so their windows stay servable.
        speeds = [t.average_speed_kmh for t in compiled.trips if t.duration_s > 0]
        jitter = spec.base.speed_jitter
        assert max(speeds) <= spec.base.speed_kmh * 0.7 * (1.0 + jitter) + 1e-9
        assert min(speeds) >= spec.base.speed_kmh * 0.7 * (1.0 - jitter) - 1e-9


class TestWindowedSlowdown:
    """Windowed TravelSlowdown events compile into a TimeVaryingTravelModel
    slot profile; day-level events keep the plain scaled-model path."""

    def test_day_level_event_keeps_plain_model(self):
        compiled = compile_scenario(tiny("rain", [TravelSlowdown(speed_factor=0.7)]))
        assert isinstance(compiled.instance.cost_model.travel_model, TravelModel)
        assert ScenarioCompiler(compiled.spec).slowdown_profile() is None

    def test_windowed_event_compiles_a_slot_profile(self):
        event = TravelSlowdown(speed_factor=0.6, cost_factor=1.2,
                               start_hour=8.0, end_hour=10.0)
        compiled = compile_scenario(tiny("rush", [event]))
        model = compiled.instance.cost_model.travel_model
        assert isinstance(model, TimeVaryingTravelModel)
        assert model.window_count == SLOT_COUNT
        assert model.window_s == pytest.approx(86400.0 / SLOT_COUNT)
        assert model.origin_ts == 0.0
        slot_s = 86400.0 / SLOT_COUNT
        for slot in range(SLOT_COUNT):
            midpoint_hour = (slot + 0.5) * slot_s / 3600.0
            if 8.0 <= midpoint_hour < 10.0:
                assert model.speed_factors[slot] == pytest.approx(0.6)
                assert model.cost_factors[slot] == pytest.approx(1.2)
            else:
                assert model.speed_factors[slot] == 1.0
                assert model.cost_factors[slot] == 1.0

    def test_windowed_events_compose_multiplicatively(self):
        events = [
            TravelSlowdown(speed_factor=0.8, start_hour=8.0, end_hour=12.0),
            TravelSlowdown(speed_factor=0.5, start_hour=10.0, end_hour=14.0),
        ]
        profile = ScenarioCompiler(tiny("storms", events)).slowdown_profile()
        assert profile is not None
        speeds, _costs = profile
        slot_s = 86400.0 / SLOT_COUNT
        hour_of = lambda slot: (slot + 0.5) * slot_s / 3600.0
        for slot in range(SLOT_COUNT):
            hour = hour_of(slot)
            expected = 1.0
            if 8.0 <= hour < 12.0:
                expected *= 0.8
            if 10.0 <= hour < 14.0:
                expected *= 0.5
            assert speeds[slot] == pytest.approx(expected)

    def test_day_level_and_windowed_compose_across_layers(self):
        """A day-level event scales the base model; a windowed one profiles
        it — the effective in-window rate is the product of both."""
        events = [
            TravelSlowdown(speed_factor=0.9),  # day-level rain
            TravelSlowdown(speed_factor=0.5, start_hour=8.0, end_hour=9.0),
        ]
        compiled = compile_scenario(tiny("layered", events))
        model = compiled.instance.cost_model.travel_model
        assert isinstance(model, TimeVaryingTravelModel)
        assert model.base.speed_kmh == pytest.approx(30.0 * 0.9)
        in_window_speed, _ = model.rates_at(8.5 * 3600.0)
        assert in_window_speed == pytest.approx(30.0 * 0.9 * 0.5)
        out_window_speed, _ = model.rates_at(12.0 * 3600.0)
        assert out_window_speed == pytest.approx(30.0 * 0.9)

    def test_windowed_event_changes_the_checksum(self):
        base = tiny("ws")
        windowed = tiny(
            "ws", [TravelSlowdown(speed_factor=0.7, start_hour=7.0, end_hour=9.0)]
        )
        shifted = tiny(
            "ws", [TravelSlowdown(speed_factor=0.7, start_hour=7.0, end_hour=10.0)]
        )
        checksums = {
            compile_scenario(s).checksum() for s in (base, windowed, shifted)
        }
        assert len(checksums) == 3

    def test_windowed_event_does_not_rescale_trip_speeds(self):
        """Only day-level events slow the *recorded* trips (a whole rainy
        day); a two-hour congestion window must leave trip generation — and
        therefore the demand timeline — untouched."""
        event = TravelSlowdown(speed_factor=0.5, start_hour=8.0, end_hour=10.0)
        base = compile_scenario(tiny("plainspeed"))
        windowed = compile_scenario(tiny("plainspeed", [event]))
        assert [t.start_ts for t in windowed.trips] == [t.start_ts for t in base.trips]
        assert [t.distance_km for t in windowed.trips] == [
            t.distance_km for t in base.trips
        ]


class TestWindowBoundaries:
    """Compiled arrival batches and dispatch-window edges agree with
    ``stream_schedule`` — the contract that makes a streamed scenario the
    replay's sharded twin (and lines forecaster slots up with dispatch)."""

    @settings(max_examples=15, deadline=None)
    @given(spec=specs(), window_s=st.sampled_from([30.0, 60.0, 120.0, 300.0]))
    def test_arrival_batches_equal_stream_schedule(self, spec, window_s):
        compiled = compile_scenario(spec)
        batches = compiled.arrival_batches(window_s)
        reference = stream_schedule(compiled.tasks, window_s)
        assert [
            [t.task_id for t in batch] for batch in batches
        ] == [[t.task_id for t in batch] for batch in reference]

    @settings(max_examples=15, deadline=None)
    @given(spec=specs())
    def test_batch_slots_respect_window_edges(self, spec):
        """Every publishable task lands in the half-open window
        ``[anchor + slot*window_s, anchor + (slot+1)*window_s)`` of its
        batch, with slots computed exactly like the forecaster's."""
        compiled = compile_scenario(spec)
        window_s = spec.window_s
        batches = compiled.arrival_batches()
        publishable = [t for t in compiled.tasks if t.is_publishable]
        if not publishable:
            return
        anchor = min(t.publish_ts for t in publishable)
        slots = []
        for batch in batches:
            batch_slots = {
                publish_slot_of(t.publish_ts, anchor, window_s)
                for t in batch
                if t.is_publishable
            }
            # One dispatch window per batch, in strictly increasing order.
            assert len(batch_slots) <= 1
            if batch_slots:
                slot = batch_slots.pop()
                for task in batch:
                    if task.is_publishable:
                        start = anchor + slot * window_s
                        assert start <= task.publish_ts < start + window_s
                slots.append(slot)
        assert slots == sorted(slots)
        assert len(set(slots)) == len(slots)

    def test_boundary_publish_lands_in_next_window(self):
        """A task publishing exactly on a window edge opens the next batch."""
        compiled = compile_scenario(tiny("edges"))
        window_s = compiled.spec.window_s
        publishable = [t for t in compiled.tasks if t.is_publishable]
        anchor = min(t.publish_ts for t in publishable)
        assert publish_slot_of(anchor + window_s, anchor, window_s) == 1
        assert publish_slot_of(anchor + window_s - 1e-6, anchor, window_s) == 0
        assert publish_slot_of(anchor + 2 * window_s, anchor, window_s) == 2


class TestHotspotMigration:
    def test_moves_demand_mass_into_the_target(self):
        source = SpatialFootprint(0.35, 0.35, 0.65, 0.65)  # downtown core
        target = SpatialFootprint(0.05, 0.05, 0.25, 0.25)
        event = HotspotMigration(6.0, 10.0, source, target, fraction=0.8)
        base = compile_scenario(tiny("migrate", trip_count=400))
        moved = compile_scenario(tiny("migrate", [event], trip_count=400))
        region = base.spec.region
        target_box = target.to_box(region)

        def in_window_target_share(compiled):
            window = [
                t for t in compiled.trips
                if 6.0 * 3600 <= t.start_ts % 86400 < 10.0 * 3600
            ]
            return sum(1 for t in window if target_box.contains(t.origin)) / len(window)

        assert in_window_target_share(moved) > in_window_target_share(base) + 0.1


class TestCompiledScenario:
    def test_arrival_batches_cover_every_task_in_publish_order(self):
        compiled = compile_scenario(tiny("batches"))
        batches = compiled.arrival_batches()
        flattened = [task for batch in batches for task in batch]
        assert sorted(t.task_id for t in flattened) == sorted(
            t.task_id for t in compiled.tasks
        )
        publish = [t.publish_ts for t in flattened]
        assert publish == sorted(publish)

    def test_effective_trip_count_without_surges_is_the_spec_count(self):
        assert ScenarioCompiler(tiny("plain")).effective_trip_count() == TRIPS
