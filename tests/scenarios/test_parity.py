"""Stream == offline parity, per built-in scenario, per executor policy.

The scenario engine adds no execution machinery — the compiled artifacts
are ordinary market inputs — so every existing parity contract must extend
to every scenario:

* a 1x1 streamed solve equals the plain ``BatchedSimulator`` replay of the
  completed task set (assignments, profits and wait totals), under every
  pool policy;
* a sharded (2x2) streamed solve is bit-identical across serial / thread /
  process pools;
* the offline ``solve()`` is bit-identical between the fork path and a
  warm pool.

One pool per policy is shared across all scenarios (module scope), which
is both the intended usage and what keeps the process-policy forks paid
once.
"""

import pytest

from repro.distributed import DistributedCoordinator, PersistentWorkerPool, SpatialPartitioner
from repro.online import BatchedSimulator
from repro.online.batch import BatchConfig
from repro.scenarios import compile_scenario, get_scenario, scenario_names

TRIPS, DRIVERS = 90, 12
EXECUTORS = ("serial", "thread", "process")


@pytest.fixture(scope="module")
def pools():
    created = {
        executor: PersistentWorkerPool(executor=executor, worker_count=2)
        for executor in EXECUTORS
    }
    yield created
    for pool in created.values():
        pool.close()


@pytest.fixture(scope="module")
def compiled_scenarios():
    return {
        name: compile_scenario(get_scenario(name).with_scale(TRIPS, DRIVERS))
        for name in scenario_names()
    }


def _fingerprint(solution):
    return (
        solution.assignment(),
        tuple((p.driver_id, p.task_indices, p.profit) for p in solution.plans),
        solution.total_value,
    )


@pytest.mark.parametrize("name", scenario_names())
def test_stream_equals_offline_replay_under_every_executor(
    name, pools, compiled_scenarios
):
    compiled = compiled_scenarios[name]
    spec = compiled.spec
    config = BatchConfig(window_s=spec.window_s)
    replay = BatchedSimulator(compiled.instance, config).run()
    batches = compiled.arrival_batches()
    for executor, pool in pools.items():
        coordinator = DistributedCoordinator(
            SpatialPartitioner(spec.region, 1, 1), executor=executor
        )
        result = coordinator.solve_stream(
            compiled.instance, batches, config=config, pool=pool
        )
        assert result.solution.assignment() == replay.assignment(), executor
        assert result.report.wait_total_s == replay.total_wait_s, executor
        assert result.solution.total_value == pytest.approx(replay.total_value)


@pytest.mark.parametrize("name", scenario_names())
def test_sharded_stream_is_executor_independent(name, pools, compiled_scenarios):
    compiled = compiled_scenarios[name]
    spec = compiled.spec
    config = BatchConfig(window_s=spec.window_s)
    batches = compiled.arrival_batches()
    prints = []
    waits = []
    for executor, pool in pools.items():
        coordinator = DistributedCoordinator(
            SpatialPartitioner(spec.region, 2, 2), executor=executor
        )
        result = coordinator.solve_stream(
            compiled.instance, batches, config=config, pool=pool
        )
        prints.append(_fingerprint(result.solution))
        waits.append(result.report.wait_total_s)
    assert prints[0] == prints[1] == prints[2]
    assert waits[0] == waits[1] == waits[2]


@pytest.mark.parametrize("name", scenario_names())
def test_offline_solve_pool_equals_fork(name, pools, compiled_scenarios):
    compiled = compiled_scenarios[name]
    partitioner = SpatialPartitioner(compiled.spec.region, 2, 2)
    fork = DistributedCoordinator(partitioner, "greedy").solve(compiled.instance)
    pooled = DistributedCoordinator(partitioner, "greedy", executor="process").solve(
        compiled.instance, pool=pools["process"]
    )
    assert _fingerprint(pooled.solution) == _fingerprint(fork.solution)
