"""Validation and semantics of the scenario spec layer."""

import pytest

from repro.geo import PORTO, BoundingBox
from repro.scenarios import (
    DemandSurge,
    HotspotMigration,
    ScenarioSpec,
    SpatialFootprint,
    SupplyShock,
    TravelSlowdown,
    ZoneClosure,
)


class TestSpatialFootprint:
    def test_to_box_resolves_fractions(self):
        footprint = SpatialFootprint(south=0.0, west=0.5, north=0.5, east=1.0)
        box = footprint.to_box(PORTO)
        assert box.south == PORTO.south
        assert box.north == pytest.approx((PORTO.south + PORTO.north) / 2.0)
        assert box.west == pytest.approx((PORTO.west + PORTO.east) / 2.0)
        assert box.east == PORTO.east

    def test_same_footprint_resolves_on_any_region(self):
        footprint = SpatialFootprint(south=0.25, west=0.25, north=0.75, east=0.75)
        nyc = BoundingBox(south=40.63, west=-74.05, north=40.85, east=-73.85)
        for region in (PORTO, nyc):
            box = footprint.to_box(region)
            assert region.contains(box.center)

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(south=-0.1, west=0.0, north=0.5, east=0.5),
            dict(south=0.0, west=0.0, north=1.2, east=0.5),
            dict(south=0.5, west=0.0, north=0.5, east=0.5),
            dict(south=0.0, west=0.6, north=0.5, east=0.4),
        ],
    )
    def test_rejects_bad_fractions(self, kwargs):
        with pytest.raises(ValueError):
            SpatialFootprint(**kwargs)


class TestEvents:
    def test_surge_rejects_bad_window_and_intensity(self):
        with pytest.raises(ValueError):
            DemandSurge(start_hour=9.0, end_hour=8.0, intensity=2.0)
        with pytest.raises(ValueError):
            DemandSurge(start_hour=8.0, end_hour=9.0, intensity=0.0)

    def test_supply_shock_needs_exactly_one_delta(self):
        with pytest.raises(ValueError):
            SupplyShock(at_hour=12.0)
        with pytest.raises(ValueError):
            SupplyShock(at_hour=12.0, driver_delta=5, driver_fraction=0.1)
        assert SupplyShock(at_hour=12.0, driver_delta=5).resolved_delta(100) == 5
        assert SupplyShock(at_hour=12.0, driver_fraction=-0.25).resolved_delta(100) == -25

    def test_slowdown_rejects_nonpositive_speed(self):
        with pytest.raises(ValueError):
            TravelSlowdown(speed_factor=0.0)

    def test_migration_rejects_bad_fraction(self):
        footprint = SpatialFootprint(0.0, 0.0, 0.5, 0.5)
        other = SpatialFootprint(0.5, 0.5, 1.0, 1.0)
        with pytest.raises(ValueError):
            HotspotMigration(1.0, 2.0, footprint, other, fraction=0.0)
        with pytest.raises(ValueError):
            HotspotMigration(1.0, 2.0, footprint, other, fraction=1.5)


class TestScenarioSpec:
    def test_spec_is_hashable_and_frozen(self):
        spec = ScenarioSpec(name="x", events=(TravelSlowdown(speed_factor=0.8),))
        assert hash(spec) == hash(spec)
        with pytest.raises(AttributeError):
            spec.name = "y"

    def test_rejects_unknown_event_type(self):
        with pytest.raises(TypeError):
            ScenarioSpec(name="x", events=("not-an-event",))

    def test_rejects_empty_name_and_bad_sizes(self):
        with pytest.raises(ValueError):
            ScenarioSpec(name="")
        with pytest.raises(ValueError):
            ScenarioSpec(name="x", trip_count=0)
        with pytest.raises(ValueError):
            ScenarioSpec(name="x", driver_count=0)

    def test_with_scale_keeps_everything_else(self):
        spec = ScenarioSpec(name="x", trip_count=500, driver_count=50, seed=3)
        scaled = spec.with_scale(trip_count=100)
        assert scaled.trip_count == 100
        assert scaled.driver_count == 50
        assert scaled.seed == 3
        assert scaled.name == spec.name
        reseeded = spec.with_seed(99)
        assert reseeded.seed == 99
        assert reseeded.trip_count == 500

    def test_events_of_type_preserves_order(self):
        first = DemandSurge(7.0, 9.0, 2.0)
        second = DemandSurge(17.0, 19.0, 1.5)
        spec = ScenarioSpec(
            name="x", events=(first, TravelSlowdown(speed_factor=0.9), second)
        )
        assert spec.events_of_type(DemandSurge) == (first, second)
        assert spec.events_of_type(ZoneClosure) == ()

    def test_region_is_the_base_bounding_box(self):
        spec = ScenarioSpec(name="x")
        assert spec.region == spec.base.bounding_box
