"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main
from repro.io import load_instance
from repro.trace import load_porto_trips


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_known_subcommands(self):
        parser = build_parser()
        for command in ("generate-trace", "build-market", "solve", "bound", "info", "experiment"):
            args = parser.parse_args(
                [command]
                + (["--output", "x"] if command in ("generate-trace", "build-market") else [])
                + (["--market", "m"] if command in ("solve", "bound", "info") else [])
            )
            assert args.command == command


class TestGenerateTrace:
    def test_writes_porto_csv(self, tmp_path, capsys):
        output = tmp_path / "trace.csv"
        assert main(["generate-trace", "--trips", "25", "--seed", "3", "--output", str(output)]) == 0
        assert "wrote 25 trips" in capsys.readouterr().out
        assert len(load_porto_trips(output)) == 25


class TestBuildAndSolve:
    @pytest.fixture(scope="class")
    def market_path(self, tmp_path_factory):
        path = tmp_path_factory.mktemp("cli") / "market.json"
        code = main(
            [
                "build-market",
                "--trips",
                "30",
                "--drivers",
                "8",
                "--seed",
                "5",
                "--output",
                str(path),
            ]
        )
        assert code == 0
        return path

    def test_build_market_output_is_loadable(self, market_path):
        instance = load_instance(market_path)
        assert instance.task_count == 30
        assert instance.driver_count == 8

    @pytest.mark.parametrize("algorithm", ["greedy", "maxMargin", "nearest", "batched"])
    def test_solve_prints_summary(self, market_path, algorithm, capsys):
        assert main(["solve", "--market", str(market_path), "--algorithm", algorithm]) == 0
        out = capsys.readouterr().out
        assert f"algorithm: {algorithm}" in out
        assert "total_value" in out
        assert "serve_rate" in out

    def test_solve_saves_solution(self, market_path, tmp_path, capsys):
        output = tmp_path / "solution.json"
        assert (
            main(
                [
                    "solve",
                    "--market",
                    str(market_path),
                    "--algorithm",
                    "greedy",
                    "--output",
                    str(output),
                ]
            )
            == 0
        )
        data = json.loads(output.read_text())
        assert data["algorithm"] == "greedy"

    def test_solve_streamed_matches_replay(self, market_path, capsys):
        """--stream on a 1x1 grid is the batched replay, bit for bit."""
        assert main(["solve", "--market", str(market_path), "--algorithm", "batched"]) == 0
        replay_out = capsys.readouterr().out
        assert (
            main(
                ["solve", "--market", str(market_path), "--algorithm", "batched", "--stream"]
            )
            == 0
        )
        stream_out = capsys.readouterr().out
        assert "streamed, serial executor" in stream_out
        # The summaries share these metrics; the numbers must be identical.
        shared = ("total_value", "total_revenue", "served_count", "serve_rate")

        def metrics(text):
            return {
                line.split(":")[0]: line
                for line in text.splitlines()
                if line.split(":")[0] in shared
            }

        assert metrics(replay_out) == metrics(stream_out)

    def test_solve_streamed_sharded_process(self, market_path, capsys):
        assert (
            main(
                [
                    "solve",
                    "--market",
                    str(market_path),
                    "--algorithm",
                    "batched",
                    "--stream",
                    "--executor",
                    "process",
                    "--grid",
                    "2x2",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "streamed, process executor" in out
        assert "shards: 4 (2x2 grid)" in out
        assert "total_value" in out

    def test_stream_requires_batched(self, market_path):
        with pytest.raises(SystemExit):
            main(["solve", "--market", str(market_path), "--algorithm", "greedy", "--stream"])
        with pytest.raises(SystemExit):
            main(["solve", "--market", str(market_path), "--executor", "process"])
        with pytest.raises(SystemExit):
            main(["solve", "--market", str(market_path), "--grid", "2x2"])
        with pytest.raises(SystemExit):
            main(
                [
                    "solve",
                    "--market",
                    str(market_path),
                    "--algorithm",
                    "batched",
                    "--stream",
                    "--grid",
                    "bogus",
                ]
            )

    def test_bound_command(self, market_path, capsys):
        assert main(["bound", "--market", str(market_path), "--kind", "lagrangian"]) == 0
        assert "upper bound" in capsys.readouterr().out

    def test_info_command(self, market_path, capsys):
        assert main(["info", "--market", str(market_path)]) == 0
        out = capsys.readouterr().out
        assert "tasks" in out and "diameter" in out

    def test_home_work_home_market(self, tmp_path):
        path = tmp_path / "hwh.json"
        main(
            [
                "build-market",
                "--trips",
                "15",
                "--drivers",
                "4",
                "--working-model",
                "home_work_home",
                "--output",
                str(path),
            ]
        )
        instance = load_instance(path)
        assert all(d.source == d.destination for d in instance.drivers)


class TestExperimentCommand:
    def test_executor_and_stream_flags_parse(self):
        parser = build_parser()
        args = parser.parse_args(
            ["experiment", "--figure", "ablations", "--executor", "process", "--stream"]
        )
        assert args.executor == "process"
        assert args.stream is True
        args = parser.parse_args(["experiment", "--no-stream"])
        assert args.stream is False
        assert args.executor == "serial"

    def test_ablations_streamed_tiny(self, capsys):
        assert (
            main(
                [
                    "experiment",
                    "--figure",
                    "ablations",
                    "--scale",
                    "tiny",
                    "--stream",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "stream mode" in out
        assert "unsharded batched stream" in out

    def test_fig3_4_tiny(self, capsys):
        assert main(["experiment", "--figure", "fig3-4", "--scale", "tiny"]) == 0
        out = capsys.readouterr().out
        assert "Fig. 3" in out and "Fig. 4" in out

    def test_fig6_9_tiny(self, capsys):
        assert main(["experiment", "--figure", "fig6-9", "--scale", "tiny"]) == 0
        out = capsys.readouterr().out
        assert "Fig. 6" in out and "Fig. 9" in out


class TestScenarioCommand:
    def test_scenario_flags_parse(self):
        parser = build_parser()
        args = parser.parse_args(["scenario", "list"])
        assert args.scenario_command == "list"
        args = parser.parse_args(
            ["scenario", "run", "--name", "rainy-day", "--mode", "offline",
             "--executor", "process", "--grid", "3x2", "--trips", "50"]
        )
        assert args.scenario_command == "run"
        assert args.name == "rainy-day"
        assert args.mode == "offline"
        assert args.grid == "3x2"
        args = parser.parse_args(
            ["scenario", "compare", "--names", "rainy-day,driver-strike", "--no-stream"]
        )
        assert args.scenario_command == "compare"
        assert args.stream is False

    def test_scenario_list_names_every_builtin(self, capsys):
        from repro.scenarios import scenario_names

        assert main(["scenario", "list"]) == 0
        out = capsys.readouterr().out
        for name in scenario_names():
            assert name in out

    def test_scenario_run_offline_tiny(self, capsys):
        assert (
            main(
                ["scenario", "run", "--name", "morning-surge", "--mode", "offline",
                 "--trips", "40", "--drivers", "6"]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "morning-surge" in out
        assert "offline-greedy" in out
        assert "serve_rate" in out

    def test_scenario_run_streamed_tiny(self, capsys):
        assert (
            main(
                ["scenario", "run", "--name", "downtown-closure", "--mode", "stream",
                 "--trips", "40", "--drivers", "6", "--grid", "2x2"]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "stream-batched" in out
        assert "mean wait" in out

    def test_scenario_compare_tiny(self, capsys):
        assert (
            main(
                ["scenario", "compare", "--names", "rainy-day,driver-strike",
                 "--trips", "40", "--drivers", "6", "--no-stream"]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "rainy-day" in out and "driver-strike" in out
        assert "offline-greedy" in out

    def test_experiment_scenarios_requires_figure_all(self):
        with pytest.raises(SystemExit):
            main(["experiment", "--figure", "fig3-4", "--scenarios", "all"])


class TestExactTierCli:
    @pytest.fixture(scope="class")
    def market_path(self, tmp_path_factory):
        path = tmp_path_factory.mktemp("cli-lp") / "market.json"
        assert main(
            ["build-market", "--trips", "30", "--drivers", "8", "--seed", "5",
             "--output", str(path)]
        ) == 0
        return path

    @pytest.mark.parametrize("algorithm", ["lp", "auto"])
    def test_solve_prints_the_bound_sandwich(self, market_path, algorithm, capsys):
        assert main(
            ["solve", "--market", str(market_path), "--algorithm", algorithm]
        ) == 0
        out = capsys.readouterr().out
        assert f"algorithm: {algorithm}" in out
        assert "exact tier chose:" in out
        assert "optimality_gap" in out
        assert "lagrangian_bound" in out

    def test_gap_threshold_flag_reaches_auto(self, market_path, capsys):
        assert main(
            ["solve", "--market", str(market_path), "--algorithm", "auto",
             "--gap-threshold", "1.0"]
        ) == 0
        out = capsys.readouterr().out
        assert "exact tier chose: greedy" in out

    def test_scenario_run_offline_lp_prints_bounds(self, capsys):
        assert main(
            ["scenario", "run", "--name", "morning-surge", "--mode", "offline",
             "--solver", "lp", "--trips", "40", "--drivers", "6"]
        ) == 0
        out = capsys.readouterr().out
        assert "offline-lp" in out
        assert "bounds: greedy" in out
        assert "gap" in out

    def test_scenario_compare_bounds_flags_parse(self):
        parser = build_parser()
        args = parser.parse_args(["scenario", "compare", "--no-bounds"])
        assert args.bounds is False
        args = parser.parse_args(
            ["scenario", "compare", "--bounds", "--gap-threshold", "0.1"]
        )
        assert args.bounds is True
        assert args.gap_threshold == pytest.approx(0.1)

    def test_scenario_compare_with_lp_solver(self, capsys):
        assert main(
            ["scenario", "compare", "--names", "rainy-day", "--solvers",
             "greedy,auto", "--trips", "40", "--drivers", "6", "--no-stream"]
        ) == 0
        out = capsys.readouterr().out
        assert "offline-auto" in out
        assert "opt_gap" in out
