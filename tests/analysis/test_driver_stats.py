"""Tests for driver-level fleet statistics."""

import pytest

from repro.analysis import driver_workload, fleet_stats, gini_coefficient
from repro.offline import greedy_assignment
from repro.online import MaxMarginDispatcher, run_online

from ..conftest import build_chain_instance, build_random_instance


@pytest.fixture(scope="module")
def chain():
    return build_chain_instance()


@pytest.fixture(scope="module")
def random_instance():
    return build_random_instance(task_count=40, driver_count=10, seed=91)


class TestGini:
    def test_perfect_equality(self):
        assert gini_coefficient([5.0, 5.0, 5.0, 5.0]) == pytest.approx(0.0, abs=1e-9)

    def test_maximal_inequality_approaches_one(self):
        values = [0.0] * 99 + [100.0]
        assert gini_coefficient(values) == pytest.approx(0.99, abs=0.01)

    def test_known_value(self):
        # For [1, 3], mean absolute difference = 2, mean = 2 -> Gini = 0.25.
        assert gini_coefficient([1.0, 3.0]) == pytest.approx(0.25)

    def test_empty_and_zero_samples(self):
        assert gini_coefficient([]) == 0.0
        assert gini_coefficient([0.0, 0.0]) == 0.0

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            gini_coefficient([-1.0, 2.0])

    def test_scale_invariance(self):
        values = [1.0, 2.0, 7.0, 4.0]
        assert gini_coefficient(values) == pytest.approx(
            gini_coefficient([10 * v for v in values]), rel=1e-9
        )


class TestDriverWorkload:
    def test_idle_driver(self, chain):
        workload = driver_workload(chain, "stranded", ())
        assert workload.task_count == 0
        assert workload.revenue == 0.0
        assert workload.total_km == 0.0
        assert workload.empty_ratio == 0.0
        assert workload.utilization == 0.0

    def test_chain_driver_workload_arithmetic(self, chain):
        """The chainer drives 10 km of service with ~0 empty km."""
        workload = driver_workload(chain, "chainer", (0, 1))
        assert workload.task_count == 2
        assert workload.revenue == pytest.approx(10.0)
        assert workload.service_km == pytest.approx(10.0, rel=0.01)
        assert workload.empty_km == pytest.approx(0.0, abs=0.05)
        assert workload.empty_ratio == pytest.approx(0.0, abs=0.01)
        assert 0.0 < workload.utilization <= 1.0

    def test_single_task_has_empty_leg_home(self, chain):
        workload = driver_workload(chain, "chainer", (0,))
        # She must still drive the 5 km from the drop-off to her destination.
        assert workload.empty_km == pytest.approx(5.0, rel=0.02)
        assert 0.0 < workload.empty_ratio < 1.0


class TestFleetStats:
    def test_greedy_fleet_stats(self, random_instance):
        solution = greedy_assignment(random_instance)
        stats = fleet_stats(random_instance, solution.assignment())
        assert len(stats.workloads) == random_instance.driver_count
        assert 0.0 < stats.active_fraction <= 1.0
        assert 0.0 <= stats.gini_revenue <= 1.0
        assert 0.0 <= stats.mean_empty_ratio <= 1.0
        assert 0.0 < stats.mean_utilization <= 1.0
        assert stats.total_service_km > 0.0
        record = stats.as_dict()
        assert record["drivers"] == random_instance.driver_count

    def test_online_outcome_compatible(self, random_instance):
        outcome = run_online(random_instance, MaxMarginDispatcher())
        stats = fleet_stats(random_instance, outcome.assignment())
        served_revenue = sum(
            random_instance.tasks[m].price for m in outcome.served_tasks()
        )
        assert sum(w.revenue for w in stats.workloads) == pytest.approx(served_revenue, rel=1e-9)

    def test_workload_lookup(self, random_instance):
        stats = fleet_stats(random_instance, {})
        first = random_instance.drivers[0].driver_id
        assert stats.workload_for(first).task_count == 0
        with pytest.raises(KeyError):
            stats.workload_for("ghost")

    def test_empty_assignment_has_zero_activity(self, random_instance):
        stats = fleet_stats(random_instance, {})
        assert stats.active_fraction == 0.0
        assert stats.gini_revenue == 0.0
        assert stats.total_service_km == 0.0
