"""Tests for text-table reporting."""

import pytest

from repro.analysis import format_metric_dict, format_series_table, format_table


class TestFormatTable:
    def test_basic_layout(self):
        text = format_table(["name", "value"], [["greedy", 1.23456], ["nearest", 2.0]])
        lines = text.splitlines()
        assert len(lines) == 4  # header, rule, 2 rows
        assert "greedy" in lines[2]
        assert "1.235" in lines[2]

    def test_column_width_accommodates_long_cells(self):
        text = format_table(["x"], [["a-very-long-cell-value"]])
        header, rule, row = text.splitlines()
        assert len(header) == len(rule) == len(row)

    def test_row_width_mismatch_rejected(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [[1.0]])

    def test_custom_float_format(self):
        text = format_table(["v"], [[3.14159]], float_format="{:.1f}")
        assert "3.1" in text
        assert "3.14" not in text


class TestFormatSeriesTable:
    def test_layout_one_column_per_series(self):
        text = format_series_table(
            "drivers", [10, 20], {"Greedy": [1.0, 2.0], "Nearest": [3.0, 4.0]}
        )
        lines = text.splitlines()
        assert "drivers" in lines[0]
        assert "Greedy" in lines[0] and "Nearest" in lines[0]
        assert len(lines) == 4

    def test_series_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            format_series_table("x", [1, 2], {"a": [1.0]})


class TestFormatMetricDict:
    def test_renders_floats_and_other_values(self):
        text = format_metric_dict({"ratio": 1.23456, "count": 7})
        assert "ratio: 1.235" in text
        assert "count: 7" in text
