"""Tests for the analysis metrics and sweep series helpers."""

import pytest

from repro.analysis import MarketMetrics, SweepSeries, algorithms_in, series_from_metrics
from repro.offline import greedy_assignment

from ..conftest import build_chain_instance


def metric(algorithm, drivers, revenue, rate):
    return MarketMetrics(
        algorithm=algorithm,
        driver_count=drivers,
        task_count=100,
        total_value=revenue * 0.8,
        total_revenue=revenue,
        served_count=int(rate * 100),
        serve_rate=rate,
        revenue_per_driver=revenue / drivers,
        tasks_per_driver=rate * 100 / drivers,
    )


class TestMarketMetrics:
    def test_from_solution(self):
        instance = build_chain_instance()
        solution = greedy_assignment(instance)
        metrics = MarketMetrics.from_solution("Greedy", 2, 2, solution)
        assert metrics.algorithm == "Greedy"
        assert metrics.total_value == pytest.approx(solution.total_value)
        assert metrics.serve_rate == pytest.approx(solution.serve_rate)
        assert metrics.as_dict()["revenue_per_driver"] == pytest.approx(
            solution.revenue_per_driver()
        )

    def test_as_dict_round_trip(self):
        m = metric("Greedy", 10, 100.0, 0.5)
        record = m.as_dict()
        assert record["algorithm"] == "Greedy"
        assert record["driver_count"] == 10
        assert record["serve_rate"] == 0.5


class TestSweepSeries:
    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            SweepSeries("Greedy", "serve_rate", (10, 20), (0.5,))

    def test_monotonicity_helpers(self):
        rising = SweepSeries("a", "m", (1, 2, 3), (1.0, 2.0, 3.0))
        falling = SweepSeries("a", "m", (1, 2, 3), (3.0, 2.0, 1.0))
        assert rising.is_non_decreasing()
        assert not rising.is_non_increasing()
        assert falling.is_non_increasing()
        assert rising.trend() > 0
        assert falling.trend() < 0

    def test_series_from_metrics_sorts_by_driver_count(self):
        rows = [
            metric("Greedy", 30, 300.0, 0.7),
            metric("Greedy", 10, 100.0, 0.4),
            metric("Nearest", 10, 90.0, 0.3),
            metric("Greedy", 20, 200.0, 0.6),
        ]
        series = series_from_metrics(rows, "Greedy", "total_revenue")
        assert series.driver_counts == (10, 20, 30)
        assert series.values == (100.0, 200.0, 300.0)

    def test_series_unknown_algorithm_or_metric(self):
        rows = [metric("Greedy", 10, 100.0, 0.4)]
        with pytest.raises(ValueError):
            series_from_metrics(rows, "Unknown", "total_revenue")
        with pytest.raises(KeyError):
            series_from_metrics(rows, "Greedy", "nonexistent")

    def test_algorithms_in_preserves_order(self):
        rows = [
            metric("Greedy", 10, 1.0, 0.1),
            metric("Nearest", 10, 1.0, 0.1),
            metric("Greedy", 20, 1.0, 0.1),
        ]
        assert algorithms_in(rows) == ["Greedy", "Nearest"]
