"""Tests for distribution summaries (Figs. 3-4 analysis)."""

import numpy as np
import pytest

from repro.analysis import (
    ascii_histogram,
    histogram,
    summarize_samples,
    travel_distance_summary,
    travel_time_summary,
)
from repro.trace import generate_trace


@pytest.fixture(scope="module")
def trips():
    return generate_trace(trip_count=1500, seed=51)


class TestSummaries:
    def test_travel_time_summary_fields(self, trips):
        summary = travel_time_summary(trips)
        assert summary.count == len(trips)
        assert summary.median <= summary.mean  # heavy right tail
        assert summary.median < summary.p90 < summary.p99 <= summary.maximum
        assert summary.tail_exponent > 1.0
        assert summary.heaviness > 1.0
        assert set(summary.as_dict()) >= {"mean", "median", "p99", "tail_exponent"}

    def test_travel_distance_summary_fields(self, trips):
        summary = travel_distance_summary(trips)
        assert summary.name == "travel_distance_km"
        assert summary.mean > 0.0
        assert summary.heaviness > 2.0

    def test_summarize_requires_positive_samples(self):
        with pytest.raises(ValueError):
            summarize_samples("x", [0.0, -1.0])

    def test_consistency_between_time_and_distance(self, trips):
        """Distances are durations times (roughly constant) speed, so both
        marginals must have a similar tail exponent."""
        t = travel_time_summary(trips)
        d = travel_distance_summary(trips)
        assert t.tail_exponent == pytest.approx(d.tail_exponent, rel=0.25)


class TestHistograms:
    def test_histogram_counts_sum_to_samples(self):
        samples = [1.0, 2.0, 3.0, 4.0, 5.0, 50.0]
        counts, edges = histogram(samples, bins=5)
        assert counts.sum() == len(samples)
        assert len(edges) == 6

    def test_log_bins_are_increasing(self):
        samples = list(np.random.default_rng(0).pareto(2.0, size=500) + 1.0)
        _counts, edges = histogram(samples, bins=10, log_bins=True)
        assert all(edges[i] < edges[i + 1] for i in range(len(edges) - 1))

    def test_histogram_validation(self):
        with pytest.raises(ValueError):
            histogram([], bins=5)
        with pytest.raises(ValueError):
            histogram([1.0], bins=0)

    def test_ascii_histogram_renders_lines(self, trips):
        text = ascii_histogram([t.duration_min for t in trips], bins=10)
        lines = text.splitlines()
        assert len(lines) == 10
        assert all("|" in line for line in lines)
