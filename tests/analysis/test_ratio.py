"""Tests for performance-ratio computation."""

import math

import pytest

from repro.analysis import BoundKind, PerformanceRatio, compute_upper_bound, performance_ratios
from repro.offline import exact_optimum, greedy_assignment, lp_relaxation_bound

from ..conftest import build_random_instance


@pytest.fixture(scope="module")
def instance():
    return build_random_instance(task_count=20, driver_count=6, seed=43)


class TestPerformanceRatio:
    def test_ratio_and_efficiency(self):
        r = PerformanceRatio("Greedy", achieved=80.0, upper_bound=100.0, bound_kind=BoundKind.EXACT)
        assert r.ratio == pytest.approx(1.25)
        assert r.efficiency == pytest.approx(0.8)

    def test_zero_achieved_gives_infinite_ratio(self):
        r = PerformanceRatio("x", achieved=0.0, upper_bound=10.0, bound_kind=BoundKind.EXACT)
        assert math.isinf(r.ratio)
        assert r.efficiency == 0.0

    def test_degenerate_zero_zero(self):
        r = PerformanceRatio("x", achieved=0.0, upper_bound=0.0, bound_kind=BoundKind.EXACT)
        assert r.ratio == 1.0
        assert r.efficiency == 1.0

    def test_efficiency_clipped_to_one(self):
        r = PerformanceRatio("x", achieved=10.000001, upper_bound=10.0, bound_kind=BoundKind.EXACT)
        assert r.efficiency == 1.0

    def test_performance_ratios_helper(self):
        ratios = performance_ratios({"a": 50.0, "b": 25.0}, upper_bound=100.0)
        assert ratios["a"].ratio == pytest.approx(2.0)
        assert ratios["b"].ratio == pytest.approx(4.0)
        assert ratios["a"].bound_kind is BoundKind.LP_RELAXATION


class TestComputeUpperBound:
    def test_lp_bound_matches_direct_call(self, instance):
        via_helper = compute_upper_bound(instance, BoundKind.LP_RELAXATION)
        direct = lp_relaxation_bound(instance).upper_bound
        assert via_helper == pytest.approx(direct)

    def test_exact_bound_matches_direct_call(self, instance):
        via_helper = compute_upper_bound(instance, BoundKind.EXACT)
        direct = exact_optimum(instance).optimum
        assert via_helper == pytest.approx(direct)

    def test_bound_ordering(self, instance):
        exact = compute_upper_bound(instance, BoundKind.EXACT)
        lp = compute_upper_bound(instance, BoundKind.LP_RELAXATION)
        lagrangian = compute_upper_bound(instance, BoundKind.LAGRANGIAN, lagrangian_iterations=30)
        greedy = greedy_assignment(instance).total_value
        assert greedy <= exact + 1e-6
        assert exact <= lp + 1e-6
        assert exact <= lagrangian + 1e-6
