"""Tests for MarketSolution, DriverPlan and the objective helpers."""

import pytest

from repro.core import (
    InfeasibleSolutionError,
    MarketSolution,
    Objective,
    assignment_value,
    consumer_surplus,
    path_value,
    total_revenue,
)

from ..conftest import build_chain_instance, build_random_instance


@pytest.fixture(scope="module")
def chain():
    return build_chain_instance()


class TestObjectives:
    def test_enum_flags(self):
        assert not Objective.DRIVERS_PROFIT.uses_valuation
        assert Objective.SOCIAL_WELFARE.uses_valuation

    def test_path_value_matches_task_map(self, chain):
        expected = chain.task_map("chainer").path_profit([0, 1])
        assert path_value(chain, "chainer", [0, 1]) == pytest.approx(expected)

    def test_assignment_value_sums_paths(self, chain):
        value = assignment_value(chain, {"chainer": [0, 1]})
        assert value == pytest.approx(chain.task_map("chainer").path_profit([0, 1]))
        assert assignment_value(chain, {}) == 0.0

    def test_total_revenue_and_surplus(self, chain):
        assignment = {"chainer": [0, 1]}
        assert total_revenue(chain, assignment) == pytest.approx(10.0)
        # No WTP recorded, so consumer surplus is zero.
        assert consumer_surplus(chain, assignment) == pytest.approx(0.0)


class TestMarketSolution:
    def test_from_assignment_builds_all_plans(self, chain):
        solution = MarketSolution.from_assignment(chain, {"chainer": (0, 1)})
        assert len(solution.plans) == chain.driver_count
        assert solution.plan_for("chainer").task_indices == (0, 1)
        assert solution.plan_for("stranded").task_indices == ()
        with pytest.raises(KeyError):
            solution.plan_for("nobody")

    def test_empty_solution(self, chain):
        solution = MarketSolution.empty(chain)
        assert solution.total_value == 0.0
        assert solution.served_count == 0
        assert solution.serve_rate == 0.0
        assert solution.is_feasible()

    def test_metrics(self, chain):
        solution = MarketSolution.from_assignment(chain, {"chainer": (0, 1)})
        assert solution.total_value == pytest.approx(10.0, rel=0.01)
        assert solution.total_revenue == pytest.approx(10.0)
        assert solution.served_count == 2
        assert solution.serve_rate == pytest.approx(1.0)
        assert solution.active_driver_count == 1
        assert solution.revenue_per_driver() == pytest.approx(5.0)
        assert solution.tasks_per_driver() == pytest.approx(1.0)
        summary = solution.summary()
        assert summary["total_value"] == pytest.approx(solution.total_value)
        assert summary["serve_rate"] == pytest.approx(1.0)

    def test_assignment_view_skips_idle_drivers(self, chain):
        solution = MarketSolution.from_assignment(chain, {"chainer": (0,)})
        assert solution.assignment() == {"chainer": (0,)}
        assert solution.served_tasks() == {0}

    def test_validate_accepts_feasible_solution(self, chain):
        MarketSolution.from_assignment(chain, {"chainer": (0, 1)}).validate()

    def test_validate_rejects_duplicate_task(self, chain):
        solution = MarketSolution.from_assignment(chain, {"chainer": (0,)})
        # Manually craft a conflicting solution: both drivers claim task 0.
        bad = MarketSolution(
            instance=chain,
            plans=(
                solution.plan_for("chainer"),
                solution.plan_for("chainer"),
            ),
        )
        with pytest.raises(InfeasibleSolutionError):
            bad.validate()

    def test_validate_rejects_infeasible_path(self, chain):
        bad = MarketSolution.from_assignment(chain, {"stranded": (0,)})
        with pytest.raises(InfeasibleSolutionError):
            bad.validate()
        # The idle plan for the same driver is fine.
        MarketSolution.from_assignment(chain, {}).validate()

    def test_validate_rejects_unknown_driver(self, chain):
        from repro.core.solution import DriverPlan

        bad = MarketSolution(instance=chain, plans=(DriverPlan("ghost", (0,), 1.0),))
        with pytest.raises(InfeasibleSolutionError):
            bad.validate()

    def test_validate_rejects_reversed_chain(self, chain):
        reversed_chain = MarketSolution.from_assignment(chain, {"chainer": (1, 0)})
        with pytest.raises(InfeasibleSolutionError):
            reversed_chain.validate()

    def test_is_feasible_boolean(self, chain):
        good = MarketSolution.from_assignment(chain, {"chainer": (0,)})
        assert good.is_feasible()
        from repro.core.solution import DriverPlan

        bad = MarketSolution(instance=chain, plans=(DriverPlan("ghost", (), 0.0),))
        assert not bad.is_feasible()

    def test_serve_rate_on_empty_task_set(self):
        instance = build_random_instance(task_count=5, driver_count=2, seed=20).with_tasks([])
        solution = MarketSolution.empty(instance)
        assert solution.serve_rate == 1.0
