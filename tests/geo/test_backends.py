"""The pluggable compute-backend registry and its parity contract.

The ``numpy`` backend is the reference: its kernels *are* the canonical
``geo.batch`` implementations, so routing through the registry must change
nothing.  Any other backend (``numba`` when importable) must reproduce the
reference — metric kernels to batch==scalar tolerance (1e-9 km at city
scale), the fused window assembly element for element, and merged
coordinator solutions bit-identically (parity contract 16's backend half).
Numba cases skip when the package is not installed; the registry itself is
pinned either way.
"""

import numpy as np
import pytest

from repro import backends
from repro.geo.batch import _METRIC_FNS, METRICS, metric_fn
from repro.online.batch import BatchConfig, BatchedSimulator

from ..conftest import build_random_instance

#: Non-reference backends constructible here (empty without numba installed).
OTHER_BACKENDS = tuple(n for n in backends.backend_names() if n != "numpy")


@pytest.fixture
def rng():
    return np.random.default_rng(99)


def window_inputs(rng, tasks=7, drivers=5):
    """Random but geographically plausible window_costs inputs (radians)."""
    def points(n):
        lat = np.radians(rng.uniform(41.1, 41.2, size=n))
        lon = np.radians(rng.uniform(-8.7, -8.5, size=n))
        return np.column_stack([lat, lon])

    return dict(
        loc_rad=points(drivers),
        dest_rad=points(drivers),
        src_rad=points(tasks),
        dst_rad=points(tasks),
        depart=rng.uniform(0.0, 900.0, size=drivers),
        sdl=rng.uniform(300.0, 1500.0, size=tasks),
        edl=rng.uniform(1500.0, 3600.0, size=tasks),
        prices=rng.uniform(4.0, 20.0, size=tasks),
        ride_durations=rng.uniform(300.0, 1200.0, size=tasks),
        service_costs=rng.uniform(0.5, 3.0, size=tasks),
        current_home_km=rng.uniform(0.0, 10.0, size=drivers),
        driver_end=rng.uniform(3600.0, 10800.0, size=drivers),
    )


def reference_window_costs(metric, scale, speed_kmh, cost_per_km, wait, inputs):
    """A deliberately naive per-cell reimplementation of the window assembly —
    independent of both backends, so it can arbitrate between them."""
    kernel = _METRIC_FNS[metric]
    t, d = inputs["src_rad"].shape[0], inputs["loc_rad"].shape[0]
    out = {name: np.empty((t, d)) for name in ("arrival", "dropoff", "approach_cost", "marginal")}
    feasible = np.empty((t, d), dtype=bool)
    for i in range(t):
        for j in range(d):
            ok = inputs["depart"][j] <= inputs["sdl"][i]
            approach_km = scale * float(
                kernel(
                    inputs["loc_rad"][j, 0], inputs["loc_rad"][j, 1],
                    inputs["src_rad"][i, 0], inputs["src_rad"][i, 1],
                )
            )
            arrival = inputs["depart"][j] + approach_km / speed_kmh * 3600.0
            ok = ok and arrival <= inputs["sdl"][i] + 1e-9
            pickup = max(arrival, inputs["sdl"][i]) if wait else arrival
            dropoff = pickup + inputs["ride_durations"][i]
            ok = ok and dropoff <= inputs["edl"][i] + 1e-9
            home_km = scale * float(
                kernel(
                    inputs["dst_rad"][i, 0], inputs["dst_rad"][i, 1],
                    inputs["dest_rad"][j, 0], inputs["dest_rad"][j, 1],
                )
            )
            ok = ok and dropoff + home_km / speed_kmh * 3600.0 <= inputs["driver_end"][j] + 1e-9
            feasible[i, j] = ok
            out["arrival"][i, j] = arrival
            out["dropoff"][i, j] = dropoff
            out["approach_cost"][i, j] = approach_km * cost_per_km
            out["marginal"][i, j] = inputs["prices"][i] - (
                home_km * cost_per_km
                + inputs["service_costs"][i]
                + approach_km * cost_per_km
                - inputs["current_home_km"][j] * cost_per_km
            )
    return feasible, out["arrival"], out["dropoff"], out["approach_cost"], out["marginal"]


class TestRegistry:
    def test_numpy_is_always_available_and_default(self):
        assert "numpy" in backends.backend_names()
        assert backends.get_backend().name == "numpy"

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="unknown backend"):
            backends.set_backend("tpu")

    def test_set_backend_returns_the_singleton(self):
        first = backends.set_backend("numpy")
        assert backends.set_backend("numpy") is first
        assert backends.get_backend() is first

    def test_use_backend_restores_previous(self):
        before = backends.get_backend()
        with backends.use_backend("numpy") as active:
            assert backends.get_backend() is active
        assert backends.get_backend() is before

    def test_use_backend_restores_on_error(self):
        before = backends.get_backend()
        with pytest.raises(RuntimeError, match="boom"):
            with backends.use_backend("numpy"):
                raise RuntimeError("boom")
        assert backends.get_backend() is before

    def test_unknown_metric_rejected_by_every_backend(self):
        for name in backends.backend_names():
            with pytest.raises(ValueError, match="unknown metric"):
                backends._instance(name).metric_fn("chebyshev")

    @pytest.mark.skipif(
        backends.numba_available(), reason="numba present: backend is registered"
    )
    def test_numba_backend_absent_without_the_package(self):
        assert "numba" not in backends.backend_names()
        with pytest.raises(ValueError, match="unknown backend"):
            backends.set_backend("numba")


class TestMetricRouting:
    def test_batch_metric_fn_resolves_through_the_active_backend(self):
        """geo.batch.metric_fn is the registry's front door: on the default
        backend it returns exactly the canonical kernels."""
        for metric in METRICS:
            assert metric_fn(metric) is _METRIC_FNS[metric]

    @pytest.mark.parametrize("other", OTHER_BACKENDS)
    @pytest.mark.parametrize("metric", METRICS)
    def test_other_backends_match_numpy_kernels(self, rng, other, metric):
        lat1, lat2 = np.radians(rng.uniform(41.1, 41.2, size=(2, 64)))
        lon1, lon2 = np.radians(rng.uniform(-8.7, -8.5, size=(2, 64)))
        want = _METRIC_FNS[metric](lat1, lon1, lat2, lon2)
        got = backends._instance(other).metric_fn(metric)(lat1, lon1, lat2, lon2)
        np.testing.assert_allclose(got, want, rtol=0.0, atol=1e-9)


class TestWindowCosts:
    @pytest.mark.parametrize("name", backends.backend_names())
    @pytest.mark.parametrize("metric", METRICS)
    @pytest.mark.parametrize("wait", [False, True])
    def test_every_backend_matches_the_naive_reference(self, rng, name, metric, wait):
        inputs = window_inputs(rng)
        scale, speed, cost = 1.2, 35.0, 0.4
        want = reference_window_costs(metric, scale, speed, cost, wait, inputs)
        got = backends._instance(name).window_costs(
            metric, scale,
            inputs["loc_rad"], inputs["dest_rad"], inputs["src_rad"], inputs["dst_rad"],
            inputs["depart"], inputs["sdl"], inputs["edl"], inputs["prices"],
            inputs["ride_durations"], inputs["service_costs"],
            inputs["current_home_km"], inputs["driver_end"],
            speed, cost, wait,
        )
        assert np.array_equal(got[0], want[0])  # feasibility is exact
        for got_m, want_m in zip(got[1:], want[1:]):
            np.testing.assert_allclose(got_m, want_m, rtol=0.0, atol=1e-9)
            assert got_m.shape == want_m.shape

    @pytest.mark.parametrize("name", backends.backend_names())
    def test_empty_window_shapes(self, rng, name):
        inputs = window_inputs(rng, tasks=0, drivers=3)
        got = backends._instance(name).window_costs(
            "haversine", 1.0,
            inputs["loc_rad"], inputs["dest_rad"], inputs["src_rad"], inputs["dst_rad"],
            inputs["depart"], inputs["sdl"], inputs["edl"], inputs["prices"],
            inputs["ride_durations"], inputs["service_costs"],
            inputs["current_home_km"], inputs["driver_end"],
            35.0, 0.4, True,
        )
        for matrix in got:
            assert matrix.shape == (0, 3)


class TestEndToEndBackendIndependence:
    """Contract 16's backend half: dispatch outcomes never depend on the
    selected backend."""

    def _outcome(self, instance):
        outcome = BatchedSimulator(instance, BatchConfig(window_s=600.0)).run()
        return (
            outcome.assignment(),
            outcome.rejected_tasks,
            tuple((r.driver_id, r.profit) for r in outcome.records),
            outcome.total_value,
        )

    @pytest.mark.parametrize("other", OTHER_BACKENDS)
    def test_batched_dispatch_is_backend_independent(self, other):
        instance = build_random_instance(task_count=50, driver_count=12, seed=11)
        reference = self._outcome(instance)
        with backends.use_backend(other):
            assert self._outcome(instance) == reference
