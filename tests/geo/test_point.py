"""Tests for repro.geo.point."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geo import (
    GeoPoint,
    centroid,
    equirectangular_km,
    haversine_km,
    manhattan_km,
    polyline_length_km,
)

PORTO_CENTER = GeoPoint(41.15, -8.61)
LISBON = GeoPoint(38.72, -9.14)


class TestGeoPoint:
    def test_valid_construction(self):
        p = GeoPoint(41.15, -8.61)
        assert p.lat == 41.15
        assert p.lon == -8.61
        assert p.as_tuple() == (41.15, -8.61)

    def test_latitude_out_of_range(self):
        with pytest.raises(ValueError):
            GeoPoint(91.0, 0.0)
        with pytest.raises(ValueError):
            GeoPoint(-90.5, 0.0)

    def test_longitude_out_of_range(self):
        with pytest.raises(ValueError):
            GeoPoint(0.0, 180.5)
        with pytest.raises(ValueError):
            GeoPoint(0.0, -181.0)

    def test_is_hashable_and_equal_by_value(self):
        assert GeoPoint(1.0, 2.0) == GeoPoint(1.0, 2.0)
        assert len({GeoPoint(1.0, 2.0), GeoPoint(1.0, 2.0)}) == 1

    def test_midpoint(self):
        mid = GeoPoint(0.0, 0.0).midpoint(GeoPoint(2.0, 4.0))
        assert mid == GeoPoint(1.0, 2.0)

    def test_offset_km_roundtrip_distance(self):
        p = PORTO_CENTER.offset_km(3.0, 4.0)
        assert haversine_km(PORTO_CENTER, p) == pytest.approx(5.0, rel=0.01)

    def test_offset_km_pole_rejected(self):
        with pytest.raises(ValueError):
            GeoPoint(90.0, 0.0).offset_km(0.0, 1.0)


class TestDistances:
    def test_zero_distance(self):
        assert haversine_km(PORTO_CENTER, PORTO_CENTER) == 0.0
        assert equirectangular_km(PORTO_CENTER, PORTO_CENTER) == 0.0

    def test_porto_lisbon_haversine(self):
        # Known geodesic distance Porto <-> Lisbon is roughly 274 km.
        assert haversine_km(PORTO_CENTER, LISBON) == pytest.approx(274.0, rel=0.03)

    def test_equirectangular_close_to_haversine_at_city_scale(self):
        a = PORTO_CENTER
        b = PORTO_CENTER.offset_km(4.0, -7.0)
        assert equirectangular_km(a, b) == pytest.approx(haversine_km(a, b), rel=1e-3)

    def test_manhattan_at_least_straight_line(self):
        a = PORTO_CENTER
        b = PORTO_CENTER.offset_km(3.0, 4.0)
        assert manhattan_km(a, b) >= equirectangular_km(a, b) - 1e-9

    def test_manhattan_equals_sum_of_legs(self):
        a = PORTO_CENTER
        b = PORTO_CENTER.offset_km(3.0, 4.0)
        assert manhattan_km(a, b) == pytest.approx(7.0, rel=0.01)

    def test_symmetry(self):
        a, b = PORTO_CENTER, LISBON
        assert haversine_km(a, b) == pytest.approx(haversine_km(b, a))
        assert equirectangular_km(a, b) == pytest.approx(equirectangular_km(b, a))


class TestAggregates:
    def test_centroid_of_single_point(self):
        assert centroid([PORTO_CENTER]) == PORTO_CENTER

    def test_centroid_of_two_points(self):
        c = centroid([GeoPoint(0.0, 0.0), GeoPoint(2.0, 2.0)])
        assert c == GeoPoint(1.0, 1.0)

    def test_centroid_empty_raises(self):
        with pytest.raises(ValueError):
            centroid([])

    def test_polyline_length_short(self):
        points = [PORTO_CENTER, PORTO_CENTER.offset_km(0.0, 1.0), PORTO_CENTER.offset_km(0.0, 2.0)]
        assert polyline_length_km(points) == pytest.approx(2.0, rel=0.01)

    def test_polyline_length_degenerate(self):
        assert polyline_length_km([]) == 0.0
        assert polyline_length_km([PORTO_CENTER]) == 0.0


coordinate_points = st.builds(
    GeoPoint,
    st.floats(min_value=-80.0, max_value=80.0),
    st.floats(min_value=-179.0, max_value=179.0),
)


class TestDistanceProperties:
    @given(coordinate_points, coordinate_points)
    @settings(max_examples=80, deadline=None)
    def test_haversine_non_negative_and_symmetric(self, a, b):
        d1 = haversine_km(a, b)
        d2 = haversine_km(b, a)
        assert d1 >= 0.0
        assert d1 == pytest.approx(d2, rel=1e-9, abs=1e-9)

    @given(coordinate_points, coordinate_points, coordinate_points)
    @settings(max_examples=60, deadline=None)
    def test_haversine_triangle_inequality(self, a, b, c):
        assert haversine_km(a, c) <= haversine_km(a, b) + haversine_km(b, c) + 1e-6

    @given(coordinate_points)
    @settings(max_examples=60, deadline=None)
    def test_identity_of_indiscernibles(self, a):
        assert haversine_km(a, a) == 0.0

    @given(
        st.floats(min_value=-5.0, max_value=5.0),
        st.floats(min_value=-5.0, max_value=5.0),
    )
    @settings(max_examples=60, deadline=None)
    def test_offset_distance_matches_euclidean(self, north, east):
        p = PORTO_CENTER.offset_km(north, east)
        expected = math.hypot(north, east)
        assert haversine_km(PORTO_CENTER, p) == pytest.approx(expected, rel=0.02, abs=1e-6)
