"""Tests for repro.geo.grid."""

import random

import pytest

from repro.geo import PORTO, GeoPoint, SpatialGrid, build_grid, equirectangular_km


def scattered_points(count: int, seed: int = 0):
    rng = random.Random(seed)
    return [PORTO.sample_uniform(rng) for _ in range(count)]


class TestGridBasics:
    def test_empty_grid(self):
        grid: SpatialGrid[str] = SpatialGrid(PORTO, cell_km=1.0)
        assert len(grid) == 0
        assert grid.nearest(PORTO.center) == []
        assert grid.within_radius(PORTO.center, 5.0) == []

    def test_invalid_cell_size(self):
        with pytest.raises(ValueError):
            SpatialGrid(PORTO, cell_km=0.0)

    def test_shape_covers_box(self):
        grid: SpatialGrid[str] = SpatialGrid(PORTO, cell_km=2.0)
        rows, cols = grid.shape
        assert rows * 2.0 >= PORTO.height_km()
        assert cols * 2.0 >= PORTO.width_km()

    def test_insert_and_len_and_iter(self):
        grid: SpatialGrid[int] = SpatialGrid(PORTO)
        points = scattered_points(10)
        grid.bulk_insert((p, i) for i, p in enumerate(points))
        assert len(grid) == 10
        assert {item for _p, item in grid} == set(range(10))

    def test_build_grid_helper(self):
        points = scattered_points(5)
        grid = build_grid(PORTO, [(p, i) for i, p in enumerate(points)])
        assert len(grid) == 5


class TestGridQueries:
    def test_within_radius_matches_brute_force(self):
        points = scattered_points(200, seed=2)
        grid = build_grid(PORTO, [(p, i) for i, p in enumerate(points)], cell_km=1.5)
        center = PORTO.center
        radius = 3.0
        expected = {
            i for i, p in enumerate(points) if equirectangular_km(center, p) <= radius
        }
        got = {item for _d, _p, item in grid.within_radius(center, radius)}
        assert got == expected

    def test_within_radius_sorted_by_distance(self):
        points = scattered_points(100, seed=3)
        grid = build_grid(PORTO, [(p, i) for i, p in enumerate(points)])
        hits = grid.within_radius(PORTO.center, 5.0)
        distances = [d for d, _p, _i in hits]
        assert distances == sorted(distances)

    def test_negative_radius_rejected(self):
        grid = build_grid(PORTO, [])
        with pytest.raises(ValueError):
            grid.within_radius(PORTO.center, -1.0)

    def test_nearest_matches_brute_force(self):
        points = scattered_points(150, seed=4)
        grid = build_grid(PORTO, [(p, i) for i, p in enumerate(points)], cell_km=1.0)
        center = PORTO.sample_uniform(random.Random(9))
        expected = min(
            range(len(points)), key=lambda i: equirectangular_km(center, points[i])
        )
        hits = grid.nearest(center, k=1)
        assert len(hits) == 1
        assert hits[0][2] == expected

    def test_nearest_k_returns_k_items(self):
        points = scattered_points(50, seed=5)
        grid = build_grid(PORTO, [(p, i) for i, p in enumerate(points)])
        assert len(grid.nearest(PORTO.center, k=7)) == 7

    def test_nearest_k_larger_than_population(self):
        points = scattered_points(3, seed=6)
        grid = build_grid(PORTO, [(p, i) for i, p in enumerate(points)])
        assert len(grid.nearest(PORTO.center, k=10)) == 3

    def test_nearest_invalid_k(self):
        grid = build_grid(PORTO, [])
        with pytest.raises(ValueError):
            grid.nearest(PORTO.center, k=0)


class TestGridMutation:
    def test_remove_item(self):
        p = PORTO.center
        marker = object()
        grid: SpatialGrid[object] = SpatialGrid(PORTO)
        grid.insert(p, marker)
        assert grid.remove(marker) is True
        assert len(grid) == 0
        assert grid.remove(marker) is False

    def test_move_relocates_item(self):
        grid: SpatialGrid[str] = SpatialGrid(PORTO, cell_km=1.0)
        start = PORTO.south_west
        end = PORTO.north_east
        grid.insert(start, "driver")
        grid.move("driver", end)
        assert len(grid) == 1
        hits = grid.within_radius(end, 0.5)
        assert [item for _d, _p, item in hits] == ["driver"]
        assert grid.within_radius(start, 0.5) == []

    def test_outside_point_is_clamped_not_lost(self):
        grid: SpatialGrid[str] = SpatialGrid(PORTO)
        outside = GeoPoint(50.0, 0.0)
        grid.insert(outside, "far-away")
        assert len(grid) == 1


class TestGridIndex:
    """The slot-addressed GridIndex used by the online candidate kernel."""

    def _build(self, count=60, seed=4, cell_km=1.0):
        from repro.geo import GridIndex

        points = scattered_points(count, seed=seed)
        index = GridIndex(PORTO, cell_km=cell_km)
        for point in points:
            index.add(point)
        return index, points

    def test_add_assigns_sequential_slots(self):
        index, points = self._build(count=5)
        assert len(index) == 5

    def test_invalid_cell_size(self):
        from repro.geo import GridIndex

        with pytest.raises(ValueError):
            GridIndex(PORTO, cell_km=-1.0)

    def test_query_is_superset_of_true_radius(self):
        index, points = self._build(count=120, seed=9)
        rng = random.Random(17)
        for _ in range(25):
            center = PORTO.sample_uniform(rng)
            radius = rng.uniform(0.2, 6.0)
            hits = set(index.query_slots(center, radius).tolist())
            for slot, point in enumerate(points):
                if equirectangular_km(center, point) <= radius:
                    assert slot in hits, (slot, radius)

    def test_query_results_sorted(self):
        index, _points = self._build(count=80, seed=2)
        slots = index.query_slots(PORTO.center, 3.0)
        assert list(slots) == sorted(slots.tolist())

    def test_update_moves_slot_between_cells(self):
        index, points = self._build(count=40, seed=5)
        target = PORTO.center
        index.update(3, target)
        hits = index.query_slots(target, 0.5)
        assert 3 in set(hits.tolist())

    def test_update_rejects_unknown_slot(self):
        index, _points = self._build(count=3)
        with pytest.raises(IndexError):
            index.update(99, PORTO.center)

    def test_out_of_box_points_always_returned(self):
        from repro.geo import GeoPoint, GridIndex

        index = GridIndex(PORTO, cell_km=1.0)
        inside = index.add(PORTO.center)
        outside = index.add(GeoPoint(45.0, -8.6))  # far north of Porto
        hits = set(index.query_slots(PORTO.center, 0.5).tolist())
        assert outside in hits
        assert inside in hits

    def test_center_outside_box_returns_everything(self):
        index, points = self._build(count=30)
        from repro.geo import GeoPoint

        hits = index.query_slots(GeoPoint(50.0, 0.0), 1.0)
        assert len(hits) == len(points)

    def test_negative_radius_rejected(self):
        index, _points = self._build(count=3)
        with pytest.raises(ValueError):
            index.query_slots(PORTO.center, -1.0)

    def test_empty_index_query(self):
        from repro.geo import GridIndex

        index = GridIndex(PORTO)
        assert index.query_slots(PORTO.center, 5.0).size == 0


class TestBoundingBoxOf:
    def test_covers_all_points_with_padding(self):
        from repro.geo import bounding_box_of

        points = scattered_points(50, seed=11)
        box = bounding_box_of(points)
        assert all(box.contains(p) for p in points)

    def test_single_point_box_is_non_degenerate(self):
        from repro.geo import bounding_box_of

        box = bounding_box_of([PORTO.center])
        assert box is not None
        assert box.north > box.south
        assert box.east > box.west

    def test_empty_collection_returns_none(self):
        from repro.geo import bounding_box_of

        assert bounding_box_of([]) is None
