"""Tests for repro.geo.distance."""

import pytest

from repro.geo import (
    EquirectangularEstimator,
    GeoPoint,
    HaversineEstimator,
    ManhattanEstimator,
    TravelModel,
    default_travel_model,
    haversine_km,
)

A = GeoPoint(41.15, -8.61)
B = A.offset_km(3.0, 4.0)  # 5 km crow-fly


class TestEstimators:
    def test_haversine_estimator_applies_circuity(self):
        plain = HaversineEstimator(circuity=1.0)
        scaled = HaversineEstimator(circuity=1.3)
        assert scaled.distance_km(A, B) == pytest.approx(1.3 * plain.distance_km(A, B))

    def test_haversine_estimator_default_matches_haversine_times_circuity(self):
        est = HaversineEstimator()
        assert est.distance_km(A, B) == pytest.approx(1.3 * haversine_km(A, B), rel=1e-9)

    def test_circuity_below_one_rejected(self):
        with pytest.raises(ValueError):
            HaversineEstimator(circuity=0.9)
        with pytest.raises(ValueError):
            EquirectangularEstimator(circuity=0.5)

    def test_equirectangular_close_to_haversine(self):
        h = HaversineEstimator(circuity=1.0).distance_km(A, B)
        e = EquirectangularEstimator(circuity=1.0).distance_km(A, B)
        assert e == pytest.approx(h, rel=1e-3)

    def test_manhattan_estimator_exceeds_straight_line(self):
        m = ManhattanEstimator().distance_km(A, B)
        assert m == pytest.approx(7.0, rel=0.02)
        assert m >= haversine_km(A, B)

    def test_estimator_is_callable(self):
        est = HaversineEstimator()
        assert est(A, B) == est.distance_km(A, B)


class TestTravelModel:
    def test_time_and_cost_scaling(self):
        model = TravelModel(HaversineEstimator(circuity=1.0), speed_kmh=30.0, cost_per_km=0.12)
        assert model.time_for_distance_s(30.0) == pytest.approx(3600.0)
        assert model.cost_for_distance(10.0) == pytest.approx(1.2)

    def test_travel_time_uses_estimator(self):
        model = TravelModel(HaversineEstimator(circuity=1.0), speed_kmh=30.0)
        expected = haversine_km(A, B) / 30.0 * 3600.0
        assert model.travel_time_s(A, B) == pytest.approx(expected, rel=1e-9)

    def test_travel_cost_uses_estimator(self):
        model = TravelModel(HaversineEstimator(circuity=1.0), speed_kmh=30.0, cost_per_km=0.2)
        assert model.travel_cost(A, B) == pytest.approx(haversine_km(A, B) * 0.2, rel=1e-9)

    def test_negative_distance_rejected(self):
        model = default_travel_model()
        with pytest.raises(ValueError):
            model.time_for_distance_s(-1.0)
        with pytest.raises(ValueError):
            model.cost_for_distance(-0.1)

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            TravelModel(HaversineEstimator(), speed_kmh=0.0)
        with pytest.raises(ValueError):
            TravelModel(HaversineEstimator(), speed_kmh=30.0, cost_per_km=-0.1)

    def test_default_travel_model_parameters(self):
        model = default_travel_model()
        assert model.speed_kmh == pytest.approx(30.0)
        assert model.cost_per_km == pytest.approx(0.12)
        assert isinstance(model.estimator, HaversineEstimator)
