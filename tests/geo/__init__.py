"""Test package marker (keeps relative imports of tests.conftest working)."""
