"""Tests for repro.geo.region."""

import random

import pytest

from repro.geo import PORTO, BoundingBox, GeoPoint, city_preset


class TestBoundingBoxConstruction:
    def test_invalid_latitude_order(self):
        with pytest.raises(ValueError):
            BoundingBox(south=2.0, west=0.0, north=1.0, east=1.0)

    def test_invalid_longitude_order(self):
        with pytest.raises(ValueError):
            BoundingBox(south=0.0, west=5.0, north=1.0, east=4.0)

    def test_corners_and_center(self):
        box = BoundingBox(south=0.0, west=0.0, north=2.0, east=4.0)
        assert box.south_west == GeoPoint(0.0, 0.0)
        assert box.north_east == GeoPoint(2.0, 4.0)
        assert box.center == GeoPoint(1.0, 2.0)


class TestContainsAndClamp:
    def test_contains_center_and_border(self):
        assert PORTO.contains(PORTO.center)
        assert PORTO.contains(PORTO.south_west)
        assert PORTO.contains(PORTO.north_east)

    def test_does_not_contain_outside_point(self):
        assert not PORTO.contains(GeoPoint(40.0, -8.6))

    def test_clamp_moves_point_inside(self):
        outside = GeoPoint(45.0, -8.6)
        clamped = PORTO.clamp(outside)
        assert PORTO.contains(clamped)
        assert clamped.lat == PORTO.north

    def test_clamp_keeps_inside_point(self):
        inside = PORTO.center
        assert PORTO.clamp(inside) == inside


class TestDimensions:
    def test_porto_extent_is_city_scale(self):
        assert 10.0 < PORTO.width_km() < 25.0
        assert 10.0 < PORTO.height_km() < 25.0
        assert PORTO.area_km2() == pytest.approx(PORTO.width_km() * PORTO.height_km())

    def test_diagonal_exceeds_sides(self):
        assert PORTO.diagonal_km() >= PORTO.width_km()
        assert PORTO.diagonal_km() >= PORTO.height_km()


class TestSampling:
    def test_uniform_sample_inside(self):
        rng = random.Random(0)
        for _ in range(200):
            assert PORTO.contains(PORTO.sample_uniform(rng))

    def test_gaussian_sample_inside(self):
        rng = random.Random(0)
        for _ in range(200):
            assert PORTO.contains(PORTO.sample_gaussian(rng))

    def test_gaussian_sample_concentrates_near_center(self):
        rng = random.Random(0)
        center = PORTO.center
        gauss = [PORTO.sample_gaussian(rng) for _ in range(300)]
        uniform = [PORTO.sample_uniform(rng) for _ in range(300)]
        mean_gauss = sum(center.haversine_km(p) for p in gauss) / len(gauss)
        mean_uniform = sum(center.haversine_km(p) for p in uniform) / len(uniform)
        assert mean_gauss < mean_uniform

    def test_gaussian_requires_positive_sigma(self):
        with pytest.raises(ValueError):
            PORTO.sample_gaussian(random.Random(0), sigma_fraction=0.0)

    def test_sampling_is_deterministic_given_seed(self):
        a = PORTO.sample_uniform(random.Random(7))
        b = PORTO.sample_uniform(random.Random(7))
        assert a == b


class TestSplit:
    def test_split_counts(self):
        assert len(PORTO.split(2, 3)) == 6

    def test_split_cells_tile_the_box(self):
        cells = PORTO.split(3, 3)
        total_area = sum(c.area_km2() for c in cells)
        assert total_area == pytest.approx(PORTO.area_km2(), rel=0.01)

    def test_split_invalid(self):
        with pytest.raises(ValueError):
            PORTO.split(0, 2)

    def test_cell_index_matches_split(self):
        rng = random.Random(1)
        cells = PORTO.split(4, 4)
        for _ in range(100):
            p = PORTO.sample_uniform(rng)
            row, col = PORTO.cell_index(p, 4, 4)
            assert cells[row * 4 + col].contains(p)

    def test_cell_index_clamps_outside_points(self):
        row, col = PORTO.cell_index(GeoPoint(0.0, 0.0), 4, 4)
        assert 0 <= row < 4 and 0 <= col < 4

    def test_iter_grid_centers(self):
        centers = list(PORTO.iter_grid_centers(2, 2))
        assert len(centers) == 4
        assert all(PORTO.contains(c) for c in centers)


class TestPresets:
    def test_known_presets(self):
        assert city_preset("porto") is PORTO
        assert city_preset("  PORTO ") is PORTO
        assert city_preset("nyc").contains(GeoPoint(40.75, -73.98))

    def test_unknown_preset(self):
        with pytest.raises(KeyError):
            city_preset("atlantis")
