"""Tests for the time-indexed travel model (repro.geo.distance)."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.geo import (
    GeoPoint,
    HaversineEstimator,
    TimeVaryingTravelModel,
    TravelModel,
    default_travel_model,
    time_varying_model,
)

A = GeoPoint(41.15, -8.61)
B = A.offset_km(3.0, 4.0)

BASE = TravelModel(HaversineEstimator(circuity=1.0), speed_kmh=30.0, cost_per_km=0.12)


def rush_hour_model() -> TimeVaryingTravelModel:
    """Hour-long windows: free-flow, rush hour at 60% speed + 20% cost, free."""
    return TimeVaryingTravelModel(
        base=BASE,
        window_s=3600.0,
        speed_factors=(1.0, 0.6, 1.0),
        cost_factors=(1.0, 1.2, 1.0),
    )


class TestValidation:
    def test_invalid_windows_rejected(self):
        with pytest.raises(ValueError):
            TimeVaryingTravelModel(base=BASE, window_s=0.0)
        with pytest.raises(ValueError):
            TimeVaryingTravelModel(base=BASE, window_s=float("inf"))
        with pytest.raises(ValueError):
            TimeVaryingTravelModel(base=BASE, origin_ts=float("nan"))
        with pytest.raises(ValueError):
            TimeVaryingTravelModel(base=BASE, speed_factors=(), cost_factors=())

    def test_mismatched_profile_lengths_rejected(self):
        with pytest.raises(ValueError):
            TimeVaryingTravelModel(
                base=BASE, speed_factors=(1.0, 0.5), cost_factors=(1.0,)
            )

    def test_invalid_factors_rejected(self):
        for bad_speed in (0.0, -0.5, float("nan"), float("inf")):
            with pytest.raises(ValueError):
                TimeVaryingTravelModel(
                    base=BASE, speed_factors=(bad_speed,), cost_factors=(1.0,)
                )
        for bad_cost in (-0.1, float("nan"), float("inf")):
            with pytest.raises(ValueError):
                TimeVaryingTravelModel(
                    base=BASE, speed_factors=(1.0,), cost_factors=(bad_cost,)
                )

    def test_non_finite_timestamp_rejected(self):
        model = rush_hour_model()
        with pytest.raises(ValueError):
            model.window_index(float("nan"))
        with pytest.raises(ValueError):
            model.rates_at(float("inf"))


class TestScaledValidation:
    """TravelModel.scaled must reject degenerate factors (zero, negative,
    NaN, inf) instead of silently building a broken model."""

    def test_zero_and_negative_speed_factor_raise(self):
        with pytest.raises(ValueError):
            BASE.scaled(speed_factor=0.0)
        with pytest.raises(ValueError):
            BASE.scaled(speed_factor=-1.0)

    def test_non_finite_factors_raise(self):
        for bad in (float("nan"), float("inf"), -float("inf")):
            with pytest.raises(ValueError):
                BASE.scaled(speed_factor=bad)
            with pytest.raises(ValueError):
                BASE.scaled(cost_factor=bad)

    def test_negative_cost_factor_raises(self):
        with pytest.raises(ValueError):
            BASE.scaled(cost_factor=-0.01)

    def test_constructor_rejects_non_finite_rates(self):
        with pytest.raises(ValueError):
            TravelModel(HaversineEstimator(), speed_kmh=float("nan"))
        with pytest.raises(ValueError):
            TravelModel(HaversineEstimator(), speed_kmh=30.0, cost_per_km=float("inf"))

    def test_valid_scaling_still_works(self):
        scaled = BASE.scaled(speed_factor=0.5, cost_factor=2.0)
        assert scaled.speed_kmh == pytest.approx(15.0)
        assert scaled.cost_per_km == pytest.approx(0.24)


class TestWindowIndexing:
    def test_window_boundaries(self):
        model = rush_hour_model()
        assert model.window_index(0.0) == 0
        assert model.window_index(3599.999) == 0
        assert model.window_index(3600.0) == 1
        assert model.window_index(7200.0) == 2

    def test_clamps_outside_profile(self):
        model = rush_hour_model()
        assert model.window_index(-1e6) == 0
        assert model.window_index(1e9) == 2

    def test_origin_shift(self):
        shifted = TimeVaryingTravelModel(
            base=BASE, window_s=60.0, speed_factors=(1.0, 0.5),
            cost_factors=(1.0, 1.0), origin_ts=1000.0,
        )
        assert shifted.window_index(999.0) == 0
        assert shifted.window_index(1059.0) == 0
        assert shifted.window_index(1060.0) == 1

    def test_rates_at(self):
        model = rush_hour_model()
        assert model.rates_at(0.0) == (30.0, 0.12)
        speed, cost = model.rates_at(3600.0)
        assert speed == pytest.approx(18.0)
        assert cost == pytest.approx(0.144)


class TestFlatIdentity:
    """Parity contract 18: a flat profile is the base model, bit for bit."""

    def test_identity_window_returns_base_object(self):
        model = rush_hour_model()
        assert model.at(0.0) is BASE
        assert model.at(7200.0) is BASE
        assert model.at(3600.0) is not BASE

    def test_flat_profile_is_flat(self):
        flat = TimeVaryingTravelModel(
            base=BASE, speed_factors=(1.0, 1.0), cost_factors=(1.0, 1.0)
        )
        assert flat.is_flat
        assert not rush_hour_model().is_flat
        assert flat.at(12345.6) is BASE

    def test_flat_conversions_bit_identical(self):
        flat = time_varying_model(BASE, 3600.0, (1.0, 1.0))
        for ts in (None, 0.0, 1800.0, 1e7):
            assert flat.travel_time_s(A, B, ts) == BASE.travel_time_s(A, B)
            assert flat.travel_cost(A, B, ts) == BASE.travel_cost(A, B)


class TestTimedConversions:
    def test_rush_hour_slows_and_costs_more(self):
        model = rush_hour_model()
        free = model.travel_time_s(A, B, 0.0)
        jam = model.travel_time_s(A, B, 3600.0)
        assert jam == pytest.approx(free / 0.6)
        assert model.travel_cost(A, B, 3600.0) == pytest.approx(
            model.travel_cost(A, B, 0.0) * 1.2
        )

    def test_untimestamped_calls_use_base_rates(self):
        model = rush_hour_model()
        assert model.travel_time_s(A, B) == BASE.travel_time_s(A, B)
        assert model.speed_kmh == BASE.speed_kmh
        assert model.cost_per_km == BASE.cost_per_km
        assert model.estimator is BASE.estimator

    def test_max_speed_over_profile(self):
        model = TimeVaryingTravelModel(
            base=BASE, speed_factors=(0.5, 1.4, 1.0), cost_factors=(1.0, 1.0, 1.0)
        )
        assert model.max_speed_kmh == pytest.approx(42.0)

    def test_scaled_keeps_profile(self):
        scaled = rush_hour_model().scaled(speed_factor=2.0)
        assert scaled.base.speed_kmh == pytest.approx(60.0)
        assert scaled.speed_factors == (1.0, 0.6, 1.0)
        assert scaled.window_s == 3600.0

    def test_helper_defaults_cost_to_ones(self):
        model = time_varying_model(BASE, 60.0, (0.8, 1.0))
        assert model.cost_factors == (1.0, 1.0)


@given(
    st.floats(min_value=-1e6, max_value=1e7, allow_nan=False, allow_infinity=False),
    st.floats(min_value=0.1, max_value=50.0),
)
def test_rates_always_match_selected_window(ts, distance_km):
    """rates_at, at and the timestamped conversions agree for any finite ts."""
    model = rush_hour_model()
    speed, cost = model.rates_at(ts)
    resolved = model.at(ts)
    assert resolved.speed_kmh == speed
    assert resolved.cost_per_km == cost
    assert model.time_for_distance_s(distance_km, ts) == resolved.time_for_distance_s(
        distance_km
    )
    assert model.cost_for_distance(distance_km, ts) == resolved.cost_for_distance(
        distance_km
    )
    assert speed > 0.0 and math.isfinite(speed)
