"""Tests for the vectorised geo kernels (repro.geo.batch)."""

import random

import numpy as np
import pytest

from repro.geo import (
    GeoPoint,
    PORTO,
    EquirectangularEstimator,
    HaversineEstimator,
    ManhattanEstimator,
    coord_array,
    cross_km,
    equirectangular_km,
    haversine_km,
    manhattan_km,
    pairwise_km,
)

SCALARS = {
    "haversine": haversine_km,
    "equirectangular": equirectangular_km,
    "manhattan": manhattan_km,
}


def scattered(count, seed=0):
    rng = random.Random(seed)
    return [PORTO.sample_uniform(rng) for _ in range(count)]


class TestCoordArray:
    def test_from_geopoints(self):
        pts = [GeoPoint(41.1, -8.6), GeoPoint(41.2, -8.5)]
        arr = coord_array(pts)
        assert arr.shape == (2, 2)
        assert arr[0, 0] == 41.1
        assert arr[1, 1] == -8.5

    def test_from_ndarray_passthrough(self):
        arr = np.array([[41.1, -8.6]])
        assert coord_array(arr).shape == (1, 2)

    def test_rejects_bad_shapes(self):
        with pytest.raises(ValueError):
            coord_array(np.zeros((3, 3)))
        with pytest.raises(ValueError):
            coord_array(np.zeros(4))

    def test_empty(self):
        assert coord_array([]).shape == (0, 2)


class TestBatchMetrics:
    @pytest.mark.parametrize("metric", sorted(SCALARS))
    def test_pairwise_matches_scalar(self, metric):
        a = scattered(40, seed=1)
        b = scattered(40, seed=2)
        batch = pairwise_km(a, b, metric=metric)
        scalar = SCALARS[metric]
        for i in range(40):
            assert batch[i] == pytest.approx(scalar(a[i], b[i]), abs=1e-9)

    @pytest.mark.parametrize("metric", sorted(SCALARS))
    def test_cross_matches_scalar(self, metric):
        a = scattered(12, seed=3)
        b = scattered(9, seed=4)
        matrix = cross_km(a, b, metric=metric)
        assert matrix.shape == (12, 9)
        scalar = SCALARS[metric]
        for i in range(12):
            for j in range(9):
                assert matrix[i, j] == pytest.approx(scalar(a[i], b[j]), abs=1e-9)

    def test_pairwise_rejects_length_mismatch(self):
        with pytest.raises(ValueError):
            pairwise_km(scattered(3), scattered(4))

    def test_unknown_metric_rejected(self):
        with pytest.raises(ValueError):
            cross_km(scattered(2), scattered(2), metric="euclidean")

    def test_empty_inputs(self):
        assert pairwise_km([], []).shape == (0,)
        assert cross_km([], scattered(3)).shape == (0, 3)
        assert cross_km(scattered(3), []).shape == (3, 0)

    def test_accepts_raw_coordinate_arrays(self):
        a, b = scattered(5, seed=5), scattered(5, seed=6)
        from_points = cross_km(a, b)
        from_arrays = cross_km(coord_array(a), coord_array(b))
        np.testing.assert_array_equal(from_points, from_arrays)


class TestEstimatorBatchApis:
    @pytest.mark.parametrize(
        "estimator",
        [
            HaversineEstimator(),
            HaversineEstimator(circuity=1.0),
            EquirectangularEstimator(circuity=1.2),
            ManhattanEstimator(),
        ],
        ids=["haversine-1.3", "haversine-1.0", "equirect-1.2", "manhattan"],
    )
    def test_batch_matches_scalar_estimator(self, estimator):
        a = scattered(20, seed=7)
        b = scattered(20, seed=8)
        elementwise = estimator.pairwise_km(a, b)
        matrix = estimator.cross_km(a, b)
        for i in range(20):
            want = estimator.distance_km(a[i], b[i])
            assert elementwise[i] == pytest.approx(want, abs=1e-9)
            assert matrix[i, i] == pytest.approx(want, abs=1e-9)

    def test_generic_fallback_loops_scalar(self):
        # A custom estimator that overrides nothing but the scalar method
        # exercises the base-class batch fallbacks.
        from repro.geo import DistanceEstimator

        class Flat(DistanceEstimator):
            def distance_km(self, origin, destination):
                return 1.5

        flat = Flat()
        a, b = scattered(3, seed=9), scattered(4, seed=10)
        np.testing.assert_allclose(flat.cross_km(a, b), np.full((3, 4), 1.5))
        np.testing.assert_allclose(flat.pairwise_km(a, a), np.full(3, 1.5))
        assert flat.prune_radius_km(10.0) is None

    def test_prune_radius_bounds_straight_line_distance(self):
        # Points whose *estimated* distance is <= reach must lie within the
        # pruning radius in straight-line (equirectangular) terms.
        rng = random.Random(12)
        for estimator in (HaversineEstimator(), EquirectangularEstimator(), ManhattanEstimator()):
            for _ in range(200):
                a, b = PORTO.sample_uniform(rng), PORTO.sample_uniform(rng)
                reach = estimator.distance_km(a, b)
                assert equirectangular_km(a, b) <= estimator.prune_radius_km(reach)
