"""Tests for JSON serialization of instances, solutions and outcomes."""

import json

import pytest

from repro.geo import GeoPoint, ManhattanEstimator, TravelModel
from repro.io import (
    SerializationError,
    instance_from_dict,
    instance_to_dict,
    load_instance,
    load_solution,
    outcome_from_dict,
    outcome_to_dict,
    save_instance,
    save_solution,
    solution_from_dict,
    solution_to_dict,
    travel_model_from_dict,
    travel_model_to_dict,
)
from repro.offline import greedy_assignment
from repro.online import MaxMarginDispatcher, run_online

from ..conftest import build_chain_instance, build_random_instance


@pytest.fixture(scope="module")
def instance():
    return build_random_instance(task_count=25, driver_count=6, seed=101)


class TestTravelModelRoundTrip:
    def test_haversine_round_trip(self):
        model = TravelModel(estimator=__import__("repro.geo", fromlist=["HaversineEstimator"]).HaversineEstimator(1.25), speed_kmh=28.0, cost_per_km=0.15)
        data = travel_model_to_dict(model)
        rebuilt = travel_model_from_dict(data)
        assert rebuilt.speed_kmh == 28.0
        assert rebuilt.cost_per_km == 0.15
        assert rebuilt.estimator.circuity == 1.25

    def test_manhattan_round_trip(self):
        model = TravelModel(ManhattanEstimator(), speed_kmh=25.0, cost_per_km=0.2)
        rebuilt = travel_model_from_dict(travel_model_to_dict(model))
        assert isinstance(rebuilt.estimator, ManhattanEstimator)

    def test_unknown_estimator_rejected(self):
        with pytest.raises(SerializationError):
            travel_model_from_dict({"estimator": "teleporter"})


class TestInstanceRoundTrip:
    def test_dict_round_trip_preserves_everything(self, instance):
        data = instance_to_dict(instance)
        rebuilt = instance_from_dict(data)
        assert rebuilt.driver_count == instance.driver_count
        assert rebuilt.task_count == instance.task_count
        for original, loaded in zip(instance.drivers, rebuilt.drivers):
            assert original == loaded
        for original, loaded in zip(instance.tasks, rebuilt.tasks):
            assert original == loaded
        assert (
            rebuilt.cost_model.travel_model.speed_kmh
            == instance.cost_model.travel_model.speed_kmh
        )

    def test_file_round_trip(self, instance, tmp_path):
        path = tmp_path / "market.json"
        save_instance(instance, path)
        loaded = load_instance(path)
        assert loaded.task_count == instance.task_count
        # The JSON document itself is valid and self-describing.
        raw = json.loads(path.read_text())
        assert raw["format"] == "repro-market"

    def test_round_trip_preserves_solver_results(self, instance, tmp_path):
        """Solving the reloaded instance gives the same objective value."""
        path = tmp_path / "market.json"
        save_instance(instance, path)
        loaded = load_instance(path)
        assert greedy_assignment(loaded).total_value == pytest.approx(
            greedy_assignment(instance).total_value, rel=1e-9
        )

    def test_wrong_format_rejected(self):
        with pytest.raises(SerializationError):
            instance_from_dict({"format": "something-else", "version": 1})
        with pytest.raises(SerializationError):
            instance_from_dict({"format": "repro-market", "version": 999})

    def test_missing_fields_rejected(self):
        with pytest.raises(SerializationError):
            instance_from_dict(
                {"format": "repro-market", "version": 1, "drivers": [{"driver_id": "d"}], "tasks": []}
            )


class TestSolutionRoundTrip:
    def test_solution_round_trip(self, instance, tmp_path):
        solution = greedy_assignment(instance)
        path = tmp_path / "solution.json"
        save_solution(solution, path, algorithm="greedy")
        loaded = load_solution(path, instance)
        assert loaded.total_value == pytest.approx(solution.total_value, rel=1e-9)
        assert loaded.assignment() == solution.assignment()
        loaded.validate()
        raw = json.loads(path.read_text())
        assert raw["algorithm"] == "greedy"

    def test_solution_wrong_format_rejected(self, instance):
        with pytest.raises(SerializationError):
            solution_from_dict({"format": "nope"}, instance)


class TestOutcomeRoundTrip:
    def test_outcome_round_trip(self, instance):
        outcome = run_online(instance, MaxMarginDispatcher())
        data = outcome_to_dict(outcome)
        rebuilt = outcome_from_dict(data, instance)
        assert rebuilt.total_value == pytest.approx(outcome.total_value, rel=1e-9)
        assert rebuilt.assignment() == outcome.assignment()
        assert rebuilt.rejected_tasks == outcome.rejected_tasks
        assert rebuilt.dispatcher_name == outcome.dispatcher_name
        # Wait-time tracking survives the round trip value-identically.
        for original, loaded in zip(outcome.records, rebuilt.records):
            assert loaded.arrival_times == original.arrival_times
        assert rebuilt.wait_times_s() == outcome.wait_times_s()
        assert rebuilt.mean_wait_s == outcome.mean_wait_s

    def test_outcome_documents_without_arrivals_still_load(self, instance):
        """Documents written before wait tracking lack arrival_times."""
        outcome = run_online(instance, MaxMarginDispatcher())
        data = outcome_to_dict(outcome)
        for entry in data["records"]:
            del entry["arrival_times"]
        rebuilt = outcome_from_dict(data, instance)
        assert rebuilt.assignment() == outcome.assignment()
        assert all(record.arrival_times == () for record in rebuilt.records)
        assert rebuilt.mean_wait_s == 0.0

    def test_outcome_wrong_format_rejected(self, instance):
        with pytest.raises(SerializationError):
            outcome_from_dict({"format": "nope"}, instance)
