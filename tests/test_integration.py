"""End-to-end integration tests across the whole pipeline.

These follow the full paper workflow: synthetic trace -> cleaning -> pricing
-> market instance -> offline/online solvers -> bounds -> metrics, plus the
distributed mode and the public package surface.
"""

import pytest

import repro
from repro import (
    DistributedCoordinator,
    MaxMarginDispatcher,
    NearestDispatcher,
    OnlineSimulator,
    SpatialPartitioner,
    WorkingModel,
)
from repro.analysis import BoundKind, PerformanceRatio, compute_upper_bound
from repro.pricing import LinearPricing, ProportionalWtp, SurgeConfig, SurgeEngine, SurgePricing
from repro.trace import CleaningConfig, clean_trips


@pytest.fixture(scope="module")
def market():
    trips = repro.generate_trace(trip_count=80, seed=71)
    cleaned, _ = clean_trips(trips, CleaningConfig(bounding_box=repro.PORTO))
    drivers = repro.generate_drivers(count=18, seed=72)
    return repro.market_from_trace(cleaned, drivers)


class TestPublicApi:
    def test_version_and_all_exports_resolve(self):
        assert repro.__version__
        for name in repro.__all__:
            assert hasattr(repro, name), f"missing export {name}"

    def test_quickstart_docstring_flow(self):
        trips = repro.generate_trace(trip_count=40, seed=1)
        drivers = repro.generate_drivers(count=8, seed=2)
        market = repro.market_from_trace(trips, drivers)
        solution = repro.greedy_assignment(market)
        solution.validate()
        assert 0.0 <= solution.serve_rate <= 1.0


class TestFullPipeline:
    def test_offline_vs_online_comparison(self, market):
        greedy = repro.greedy_assignment(market)
        greedy.validate()
        max_margin = OnlineSimulator(market, MaxMarginDispatcher()).run()
        nearest = OnlineSimulator(market, NearestDispatcher()).run()

        bound = compute_upper_bound(market, BoundKind.LP_RELAXATION)
        for achieved in (greedy.total_value, max_margin.total_value, nearest.total_value):
            ratio = PerformanceRatio("alg", achieved, bound, BoundKind.LP_RELAXATION)
            assert ratio.ratio >= 1.0 - 1e-6

        # The offline algorithm with full information should beat the myopic
        # nearest-driver rule on this workload.
        assert greedy.total_value >= nearest.total_value - 1e-6

    def test_lagrangian_bound_usable_at_scale(self, market):
        greedy_value = repro.greedy_assignment(market).total_value
        bound = repro.lagrangian_bound(market, iterations=25, target_value=greedy_value)
        assert bound.upper_bound >= greedy_value - 1e-6

    def test_distributed_mode_end_to_end(self, market):
        coordinator = DistributedCoordinator(
            SpatialPartitioner(repro.PORTO, 2, 2), solver_name="greedy", parallel=True
        )
        result = coordinator.solve(market)
        result.solution.validate()
        assert result.report.shard_count == 4
        global_value = repro.greedy_assignment(market).total_value
        assert result.solution.total_value <= global_value + 1e-6

    def test_surge_pricing_pipeline(self):
        """Price a day of trips with a dynamic surge engine fed by the trace."""
        trips = repro.generate_trace(trip_count=60, seed=73)
        engine = SurgeEngine(SurgeConfig(sensitivity=0.8))
        for trip in trips:
            engine.record_demand(trip.origin, trip.start_ts)
        for trip in trips[::3]:
            engine.record_supply(trip.origin, trip.start_ts)
        policy = SurgePricing(engine=engine)
        tasks = repro.tasks_from_trips(trips, pricing=policy)
        base_tasks = repro.tasks_from_trips(trips, pricing=LinearPricing())
        assert len(tasks) == len(trips)
        # Surge never prices below the base fare and raises at least some fares.
        assert all(t.price >= b.price - 1e-9 for t, b in zip(tasks, base_tasks))
        assert any(t.price > b.price + 1e-9 for t, b in zip(tasks, base_tasks))

    def test_social_welfare_objective_with_wtp(self):
        trips = repro.generate_trace(trip_count=50, seed=74)
        drivers = repro.generate_drivers(count=10, seed=75)
        market = repro.market_from_trace(trips, drivers, wtp_model=ProportionalWtp(0.4))
        profit_solution = repro.greedy_assignment(market, objective=repro.Objective.DRIVERS_PROFIT)
        welfare_solution = repro.greedy_assignment(market, objective=repro.Objective.SOCIAL_WELFARE)
        profit_solution.validate()
        welfare_solution.validate()
        assert welfare_solution.total_value >= profit_solution.total_value - 1e-6

    def test_home_work_home_market(self):
        trips = repro.generate_trace(trip_count=60, seed=76)
        drivers = repro.generate_drivers(
            count=12, working_model=WorkingModel.HOME_WORK_HOME, seed=77
        )
        market = repro.market_from_trace(trips, drivers)
        solution = repro.greedy_assignment(market)
        solution.validate()
        assert all(d.is_home_work_home for d in market.drivers)

    def test_market_diameter_is_reported(self, market):
        diameter = repro.market_diameter(market)
        assert diameter >= 1
        graph = repro.build_market_graph(market)
        assert graph.number_of_nodes() >= market.driver_count * 2
