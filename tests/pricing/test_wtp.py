"""Tests for willingness-to-pay models."""

import random

import pytest

from repro.geo import GeoPoint
from repro.pricing import ExactWtp, ProportionalWtp, RideQuote, TimeValueWtp

A = GeoPoint(41.15, -8.61)
B = A.offset_km(0.0, 5.0)
QUOTE = RideQuote(origin=A, destination=B, distance_km=5.0, duration_s=900.0, request_ts=0.0)


class TestProportionalWtp:
    def test_valuation_at_least_price(self):
        model = ProportionalWtp(max_markup=0.3)
        rng = random.Random(0)
        for _ in range(100):
            value = model.valuation(QUOTE, 10.0, rng)
            assert 10.0 <= value <= 13.0 + 1e-9

    def test_zero_markup_equals_price(self):
        model = ProportionalWtp(max_markup=0.0)
        assert model.valuation(QUOTE, 7.5, random.Random(0)) == pytest.approx(7.5)

    def test_invalid_markup(self):
        with pytest.raises(ValueError):
            ProportionalWtp(max_markup=-0.1)

    def test_negative_price_rejected(self):
        with pytest.raises(ValueError):
            ProportionalWtp().valuation(QUOTE, -1.0, random.Random(0))


class TestExactWtp:
    def test_valuation_equals_price(self):
        model = ExactWtp()
        assert model.valuation(QUOTE, 12.3, random.Random(0)) == 12.3

    def test_negative_price_rejected(self):
        with pytest.raises(ValueError):
            ExactWtp().valuation(QUOTE, -0.5, random.Random(0))


class TestTimeValueWtp:
    def test_valuation_floors_at_price(self):
        model = TimeValueWtp(value_of_time_per_h=1.0, convenience=1.0)
        # Time value of a 15-minute ride at 1/h is 0.25 -> floored at price.
        assert model.valuation(QUOTE, 5.0, random.Random(0)) == pytest.approx(5.0)

    def test_valuation_uses_time_value_when_larger(self):
        model = TimeValueWtp(value_of_time_per_h=40.0, convenience=1.0)
        # 15 minutes at 40/h = 10 > price 5.
        assert model.valuation(QUOTE, 5.0, random.Random(0)) == pytest.approx(10.0)

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            TimeValueWtp(value_of_time_per_h=0.0)
        with pytest.raises(ValueError):
            TimeValueWtp(convenience=0.0)

    def test_negative_price_rejected(self):
        with pytest.raises(ValueError):
            TimeValueWtp().valuation(QUOTE, -1.0, random.Random(0))
