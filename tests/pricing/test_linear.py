"""Tests for the linear fare model (Eq. 15)."""

import pytest

from repro.geo import GeoPoint
from repro.pricing import FareSchedule, LinearPricing, RideQuote

A = GeoPoint(41.15, -8.61)
B = A.offset_km(0.0, 5.0)


def quote(distance=5.0, duration=600.0, ts=1000.0):
    return RideQuote(origin=A, destination=B, distance_km=distance, duration_s=duration, request_ts=ts)


class TestRideQuote:
    def test_negative_values_rejected(self):
        with pytest.raises(ValueError):
            RideQuote(A, B, -1.0, 600.0, 0.0)
        with pytest.raises(ValueError):
            RideQuote(A, B, 1.0, -600.0, 0.0)


class TestFareSchedule:
    def test_fare_is_linear_in_distance_and_time(self):
        schedule = FareSchedule(beta1_per_km=1.0, beta2_per_s=0.01, base_fare=2.0)
        assert schedule.fare(10.0, 100.0) == pytest.approx(2.0 + 10.0 + 1.0)

    def test_default_schedule_prices_a_typical_trip_reasonably(self):
        schedule = FareSchedule()
        fare = schedule.fare(5.0, 600.0)  # 5 km, 10 minutes
        assert 3.0 <= fare <= 15.0

    def test_invalid_schedules(self):
        with pytest.raises(ValueError):
            FareSchedule(beta1_per_km=-1.0)
        with pytest.raises(ValueError):
            FareSchedule(beta1_per_km=0.0, beta2_per_s=0.0, base_fare=0.0)

    def test_negative_inputs_rejected(self):
        with pytest.raises(ValueError):
            FareSchedule().fare(-1.0, 0.0)


class TestLinearPricing:
    def test_eq15_structure(self):
        # p_m = alpha * (beta1 * distance + beta2 * duration)
        policy = LinearPricing(
            schedule=FareSchedule(beta1_per_km=0.8, beta2_per_s=0.005, base_fare=0.0),
            alpha=1.5,
        )
        q = quote(distance=4.0, duration=300.0)
        assert policy.price(q) == pytest.approx(1.5 * (0.8 * 4.0 + 0.005 * 300.0))
        assert policy.surge_multiplier(q) == 1.5

    def test_default_alpha_is_one(self):
        policy = LinearPricing()
        q = quote()
        assert policy.price(q) == pytest.approx(policy.schedule.fare(q.distance_km, q.duration_s))

    def test_price_scales_with_alpha(self):
        q = quote()
        base = LinearPricing(alpha=1.0).price(q)
        surged = LinearPricing(alpha=2.0).price(q)
        assert surged == pytest.approx(2.0 * base)

    def test_invalid_alpha(self):
        with pytest.raises(ValueError):
            LinearPricing(alpha=0.0)

    def test_policy_is_callable(self):
        policy = LinearPricing()
        q = quote()
        assert policy(q) == policy.price(q)

    def test_longer_trips_cost_more(self):
        policy = LinearPricing()
        assert policy.price(quote(distance=10.0, duration=1200.0)) > policy.price(
            quote(distance=2.0, duration=240.0)
        )
