"""Tests for the surge-pricing engine."""

import math

import pytest

from repro.geo import PORTO, GeoPoint
from repro.pricing import (
    FareSchedule,
    LinearPricing,
    RideQuote,
    SurgeConfig,
    SurgeEngine,
    SurgePricing,
)

DOWNTOWN = PORTO.center
SUBURB = GeoPoint(PORTO.south + 0.005, PORTO.west + 0.005)


def quote_at(location, ts=1000.0):
    return RideQuote(
        origin=location,
        destination=PORTO.center,
        distance_km=3.0,
        duration_s=500.0,
        request_ts=ts,
    )


class TestSurgeConfig:
    def test_invalid_configs(self):
        with pytest.raises(ValueError):
            SurgeConfig(zone_rows=0)
        with pytest.raises(ValueError):
            SurgeConfig(window_s=0.0)
        with pytest.raises(ValueError):
            SurgeConfig(sensitivity=-1.0)
        with pytest.raises(ValueError):
            SurgeConfig(min_multiplier=2.0, max_multiplier=1.0)


class TestSurgeEngine:
    def test_no_demand_means_no_surge(self):
        engine = SurgeEngine()
        assert engine.multiplier(DOWNTOWN, 0.0) == pytest.approx(1.0)

    def test_balanced_market_has_no_surge(self):
        engine = SurgeEngine()
        engine.record_demand(DOWNTOWN, 100.0, count=5)
        engine.record_supply(DOWNTOWN, 100.0, count=5)
        assert engine.multiplier(DOWNTOWN, 100.0) == pytest.approx(1.0)

    def test_excess_demand_raises_multiplier(self):
        engine = SurgeEngine(SurgeConfig(sensitivity=0.5))
        engine.record_demand(DOWNTOWN, 100.0, count=30)
        engine.record_supply(DOWNTOWN, 100.0, count=10)
        # imbalance = 3, alpha = 1 + 0.5 * (3 - 1) = 2.0
        assert engine.multiplier(DOWNTOWN, 100.0) == pytest.approx(2.0)

    def test_zero_supply_hits_cap(self):
        engine = SurgeEngine(SurgeConfig(max_multiplier=2.5))
        engine.record_demand(DOWNTOWN, 100.0, count=3)
        assert engine.multiplier(DOWNTOWN, 100.0) == pytest.approx(2.5)

    def test_multiplier_clipped_to_max(self):
        engine = SurgeEngine(SurgeConfig(sensitivity=10.0, max_multiplier=3.0))
        engine.record_demand(DOWNTOWN, 100.0, count=100)
        engine.record_supply(DOWNTOWN, 100.0, count=1)
        assert engine.multiplier(DOWNTOWN, 100.0) == pytest.approx(3.0)

    def test_multiplier_quantised(self):
        engine = SurgeEngine(SurgeConfig(sensitivity=0.37, quantum=0.1))
        engine.record_demand(DOWNTOWN, 0.0, count=7)
        engine.record_supply(DOWNTOWN, 0.0, count=3)
        value = engine.multiplier(DOWNTOWN, 0.0)
        assert value == pytest.approx(round(value, 1))

    def test_surge_is_local_to_zone(self):
        engine = SurgeEngine()
        engine.record_demand(DOWNTOWN, 100.0, count=50)
        engine.record_supply(DOWNTOWN, 100.0, count=5)
        assert engine.multiplier(DOWNTOWN, 100.0) > 1.0
        assert engine.multiplier(SUBURB, 100.0) == pytest.approx(1.0)
        assert engine.zone_of(DOWNTOWN) != engine.zone_of(SUBURB)

    def test_surge_is_local_to_time_window(self):
        engine = SurgeEngine(SurgeConfig(window_s=900.0))
        engine.record_demand(DOWNTOWN, 100.0, count=50)
        engine.record_supply(DOWNTOWN, 100.0, count=5)
        assert engine.multiplier(DOWNTOWN, 100.0) > 1.0
        assert engine.multiplier(DOWNTOWN, 100.0 + 3 * 900.0) == pytest.approx(1.0)

    def test_imbalance_diagnostics(self):
        engine = SurgeEngine()
        assert engine.imbalance(DOWNTOWN, 0.0) == 0.0
        engine.record_demand(DOWNTOWN, 0.0, count=4)
        assert math.isinf(engine.imbalance(DOWNTOWN, 0.0))
        engine.record_supply(DOWNTOWN, 0.0, count=2)
        assert engine.imbalance(DOWNTOWN, 0.0) == pytest.approx(2.0)

    def test_reset_clears_observations(self):
        engine = SurgeEngine()
        engine.record_demand(DOWNTOWN, 0.0, count=10)
        engine.reset()
        assert engine.multiplier(DOWNTOWN, 0.0) == pytest.approx(1.0)

    def test_negative_counts_rejected(self):
        engine = SurgeEngine()
        with pytest.raises(ValueError):
            engine.record_demand(DOWNTOWN, 0.0, count=-1)
        with pytest.raises(ValueError):
            engine.record_supply(DOWNTOWN, 0.0, count=-1)


class TestSurgePricing:
    def test_price_uses_engine_multiplier(self):
        engine = SurgeEngine(SurgeConfig(sensitivity=0.5))
        engine.record_demand(DOWNTOWN, 100.0, count=30)
        engine.record_supply(DOWNTOWN, 100.0, count=10)
        schedule = FareSchedule()
        policy = SurgePricing(engine=engine, schedule=schedule)
        q = quote_at(DOWNTOWN, ts=100.0)
        base = LinearPricing(schedule=schedule).price(q)
        assert policy.surge_multiplier(q) == pytest.approx(2.0)
        assert policy.price(q) == pytest.approx(2.0 * base)

    def test_unsurged_zone_prices_at_base(self):
        engine = SurgeEngine()
        schedule = FareSchedule()
        policy = SurgePricing(engine=engine, schedule=schedule)
        q = quote_at(SUBURB)
        assert policy.price(q) == pytest.approx(LinearPricing(schedule=schedule).price(q))
