"""Shared fixtures and instance factories for the test suite."""

from __future__ import annotations

import random

import pytest
from hypothesis import settings

# Deterministic hypothesis runs everywhere (CI and local): derandomize pins
# the example stream to the test's source hash, no wall-clock deadline flakes,
# and a bounded example budget keeps the property suites cheap.  Individual
# tests may still lower max_examples with their own @settings.
settings.register_profile("repro-ci", derandomize=True, deadline=None, max_examples=50)
settings.load_profile("repro-ci")

from repro.geo import GeoPoint, HaversineEstimator, TravelModel
from repro.market.cost import MarketCostModel
from repro.market.driver import Driver
from repro.market.instance import MarketInstance, market_from_trace
from repro.market.task import Task
from repro.trace.drivers import DriverGenerationConfig, DriverScheduleGenerator, WorkingModel
from repro.trace.synthetic import generate_trace

#: Anchor point inside the Porto bounding box used by handcrafted geometries.
ANCHOR = GeoPoint(41.17, -8.62)


def flat_travel_model(speed_kmh: float = 30.0, cost_per_km: float = 0.12) -> TravelModel:
    """Travel model with circuity 1.0 so distances equal straight-line values,
    which makes handcrafted arithmetic in tests exact."""
    return TravelModel(HaversineEstimator(circuity=1.0), speed_kmh=speed_kmh, cost_per_km=cost_per_km)


def point_east(km: float) -> GeoPoint:
    """A point ``km`` kilometres east of the anchor."""
    return ANCHOR.offset_km(0.0, km)


def make_chain_task(index: int, start_km: float, end_km: float, start_ts: float, price: float) -> Task:
    """A task driving east along the anchor's latitude."""
    distance = abs(end_km - start_km)
    duration = distance / 30.0 * 3600.0
    return Task(
        task_id=f"task-{index}",
        publish_ts=start_ts - 600.0,
        source=point_east(start_km),
        destination=point_east(end_km),
        start_deadline_ts=start_ts,
        end_deadline_ts=start_ts + duration + 120.0,
        price=price,
        distance_km=distance,
    )


def build_chain_instance() -> MarketInstance:
    """A tiny handcrafted market with a chainable pair of tasks.

    * task 0: km 0 -> km 5 starting at t=1000
    * task 1: km 5 -> km 10 starting shortly after task 0 can finish
    * driver "chainer": travels km 0 -> km 10 over a window wide enough to
      serve both tasks back to back
    * driver "stranded": far north with a window that fits nothing
    """
    task0 = make_chain_task(0, 0.0, 5.0, start_ts=1000.0, price=5.0)
    ride0 = 5.0 / 30.0 * 3600.0
    task1_start = task0.start_deadline_ts + ride0 + 300.0
    task1 = make_chain_task(1, 5.0, 10.0, start_ts=task1_start, price=5.0)

    chainer = Driver(
        driver_id="chainer",
        source=point_east(0.0),
        destination=point_east(10.0),
        start_ts=0.0,
        end_ts=task1.end_deadline_ts + 3600.0,
    )
    stranded = Driver(
        driver_id="stranded",
        source=ANCHOR.offset_km(6.0, 0.0),
        destination=ANCHOR.offset_km(6.0, 0.5),
        start_ts=0.0,
        end_ts=300.0,
    )
    return MarketInstance.create(
        drivers=[chainer, stranded],
        tasks=[task0, task1],
        cost_model=MarketCostModel(flat_travel_model()),
    )


def build_random_instance(
    task_count: int = 30,
    driver_count: int = 8,
    seed: int = 3,
    working_model: WorkingModel = WorkingModel.HITCHHIKING,
) -> MarketInstance:
    """A small but non-trivial instance built through the trace pipeline."""
    trips = generate_trace(trip_count=task_count, seed=seed)
    generator = DriverScheduleGenerator(
        DriverGenerationConfig(working_model=working_model, seed=seed + 1)
    )
    drivers = generator.generate_from_trips(trips, count=driver_count)
    return market_from_trace(trips, drivers)


@pytest.fixture(scope="session")
def chain_instance() -> MarketInstance:
    return build_chain_instance()


@pytest.fixture(scope="session")
def small_instance() -> MarketInstance:
    """A session-cached random instance used by many integration tests."""
    return build_random_instance(task_count=30, driver_count=8, seed=3)


@pytest.fixture(scope="session")
def medium_instance() -> MarketInstance:
    """A slightly larger instance for algorithm comparisons."""
    return build_random_instance(task_count=60, driver_count=15, seed=5)


@pytest.fixture()
def rng() -> random.Random:
    return random.Random(1234)
