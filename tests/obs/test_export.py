"""Exposition: Chrome trace JSON, Prometheus text format, the HTTP endpoint."""

import asyncio
import json
import re
import urllib.error
import urllib.request

import pytest

from repro.obs.export import (
    PROMETHEUS_CONTENT_TYPE,
    chrome_trace_events,
    render_prometheus,
    start_http_server,
    write_chrome_trace,
)
from repro.obs.registry import MetricsRegistry
from repro.obs.trace import NO_PARENT, TraceRecorder


def _sample_spans():
    recorder = TraceRecorder()
    with recorder.span("solve", pid=100):
        with recorder.span("candidates"):
            pass
    with recorder.span("orphan"):
        pass
    return recorder.export()


class TestChromeTrace:
    def test_events_are_complete_events_with_rebased_micros(self):
        events = chrome_trace_events(_sample_spans())
        assert len(events) == 3
        assert all(event["ph"] == "X" for event in events)
        assert min(event["ts"] for event in events) == 0.0
        assert all(event["dur"] >= 0.0 for event in events)

    def test_pid_inherited_from_nearest_annotated_ancestor(self):
        by_name = {event["name"]: event for event in chrome_trace_events(_sample_spans())}
        assert by_name["solve"]["pid"] == 100
        assert by_name["candidates"]["pid"] == 100  # inherits through the tree
        assert by_name["orphan"]["pid"] == 0  # no pid anywhere above

    def test_attrs_become_args(self):
        by_name = {event["name"]: event for event in chrome_trace_events(_sample_spans())}
        assert by_name["solve"]["args"] == {"pid": 100}

    def test_write_chrome_trace_is_loadable_json(self, tmp_path):
        path = tmp_path / "trace.json"
        write_chrome_trace(str(path), _sample_spans())
        payload = json.loads(path.read_text())
        assert isinstance(payload["traceEvents"], list)
        assert payload["displayTimeUnit"] == "ms"

    def test_empty_spans_write_empty_trace(self, tmp_path):
        path = tmp_path / "empty.json"
        write_chrome_trace(str(path), ())
        assert json.loads(path.read_text())["traceEvents"] == []


# One Prometheus exposition line: name{labels} value  (labels optional).
_SAMPLE_RE = re.compile(
    r"^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^{}]*\})? "
    r"(NaN|[+-]Inf|[+-]?[0-9]+(\.[0-9]+)?([eE][+-]?[0-9]+)?)$"
)


def _filled_registry():
    registry = MetricsRegistry()
    registry.counter("repro_orders_total", "Orders accepted", city="porto").inc(41)
    registry.gauge("repro_queue_depth", "Queue depth").set(3)
    hist = registry.histogram(
        "repro_latency_seconds", "Latency", buckets=(0.1, 1.0), city='po"rto\n'
    )
    for value in (0.05, 0.5, 5.0):
        hist.observe(value)
    return registry


class TestPrometheusText:
    def test_every_line_parses(self):
        text = render_prometheus(_filled_registry())
        assert text.endswith("\n")
        for line in text.splitlines():
            if line.startswith("#"):
                assert re.match(r"^# (HELP|TYPE) [a-zA-Z_:][a-zA-Z0-9_:]* ", line)
            else:
                assert _SAMPLE_RE.match(line), line

    def test_histogram_buckets_are_cumulative_and_consistent(self):
        text = render_prometheus(_filled_registry())
        buckets = [
            float(line.rsplit(" ", 1)[1])
            for line in text.splitlines()
            if line.startswith("repro_latency_seconds_bucket")
        ]
        assert buckets == sorted(buckets)  # cumulative
        count = next(
            float(line.rsplit(" ", 1)[1])
            for line in text.splitlines()
            if line.startswith("repro_latency_seconds_count")
        )
        assert buckets[-1] == count  # +Inf bucket equals _count
        total = next(
            float(line.rsplit(" ", 1)[1])
            for line in text.splitlines()
            if line.startswith("repro_latency_seconds_sum")
        )
        assert total == pytest.approx(5.55)

    def test_label_values_are_escaped(self):
        text = render_prometheus(_filled_registry())
        assert r"po\"rto\n" in text
        assert "\n\n" not in text

    def test_help_and_type_precede_samples(self):
        lines = render_prometheus(_filled_registry()).splitlines()
        index = lines.index("# TYPE repro_orders_total counter")
        assert lines[index - 1].startswith("# HELP repro_orders_total")
        assert lines[index + 1].startswith("repro_orders_total{")

    def test_empty_registry_renders_empty(self):
        assert render_prometheus(MetricsRegistry()) == ""


class TestHttpServer:
    def _fetch(self, port, path):
        with urllib.request.urlopen(f"http://127.0.0.1:{port}{path}") as response:
            return response.status, response.headers.get("Content-Type"), response.read()

    def test_metrics_health_and_404(self):
        async def scenario():
            registry = _filled_registry()
            server = await start_http_server(
                lambda: registry, health_fn=lambda: {"status": "ok"}, port=0
            )
            port = server.sockets[0].getsockname()[1]
            loop = asyncio.get_running_loop()
            try:
                status, ctype, body = await loop.run_in_executor(
                    None, self._fetch, port, "/metrics"
                )
                assert status == 200
                assert ctype == PROMETHEUS_CONTENT_TYPE
                assert b"repro_orders_total" in body
                status, ctype, body = await loop.run_in_executor(
                    None, self._fetch, port, "/health"
                )
                assert status == 200
                assert json.loads(body) == {"status": "ok"}
                with pytest.raises(urllib.error.HTTPError) as err:
                    await loop.run_in_executor(None, self._fetch, port, "/nope")
                assert err.value.code == 404
            finally:
                server.close()
                await server.wait_closed()

        asyncio.run(scenario())

    def test_health_404_when_no_health_fn(self):
        async def scenario():
            server = await start_http_server(MetricsRegistry, port=0)
            port = server.sockets[0].getsockname()[1]
            loop = asyncio.get_running_loop()
            try:
                with pytest.raises(urllib.error.HTTPError) as err:
                    await loop.run_in_executor(None, self._fetch, port, "/health")
                assert err.value.code == 404
            finally:
                server.close()
                await server.wait_closed()

        asyncio.run(scenario())
