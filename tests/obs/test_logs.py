"""Structured logging: level resolution, idempotent setup, the worker relay."""

import logging
import logging.handlers
import multiprocessing
import queue

import pytest

from repro.obs import logs as obs_logs


@pytest.fixture(autouse=True)
def _clean_root_logger():
    """Strip any repro handlers/config so tests see a pristine logger tree."""

    def strip():
        root = logging.getLogger(obs_logs.ROOT_LOGGER)
        for handler in list(root.handlers):
            if getattr(handler, "_repro_handler", False):
                root.removeHandler(handler)
        root.propagate = True
        root.setLevel(logging.NOTSET)
        obs_logs._configured_level = None

    strip()
    yield
    strip()


class TestResolveLevel:
    def test_names_and_digits(self):
        assert obs_logs.resolve_level("DEBUG") == logging.DEBUG
        assert obs_logs.resolve_level("info") == logging.INFO
        assert obs_logs.resolve_level("30") == logging.WARNING

    def test_unknown_level_raises(self):
        with pytest.raises(ValueError):
            obs_logs.resolve_level("chatty")


class TestConfigureLogging:
    def test_none_without_env_is_a_noop(self, monkeypatch):
        monkeypatch.delenv(obs_logs.ENV_VAR, raising=False)
        obs_logs.configure_logging(None)
        assert obs_logs.configured_level() is None
        root = logging.getLogger(obs_logs.ROOT_LOGGER)
        assert not any(
            getattr(handler, "_repro_handler", False) for handler in root.handlers
        )

    def test_env_var_fallback(self, monkeypatch):
        monkeypatch.setenv(obs_logs.ENV_VAR, "WARNING")
        obs_logs.configure_logging(None)
        assert obs_logs.configured_level() == logging.WARNING

    def test_explicit_level_wins_and_is_idempotent(self, monkeypatch):
        monkeypatch.setenv(obs_logs.ENV_VAR, "ERROR")
        obs_logs.configure_logging("DEBUG")
        obs_logs.configure_logging("DEBUG")
        root = logging.getLogger(obs_logs.ROOT_LOGGER)
        marked = [
            handler for handler in root.handlers
            if getattr(handler, "_repro_handler", False)
        ]
        assert len(marked) == 1  # no handler stacking on re-configure
        assert obs_logs.configured_level() == logging.DEBUG
        assert root.propagate is False

    def test_get_logger_is_namespaced(self):
        assert obs_logs.get_logger("distributed.pool").name == "repro.distributed.pool"


class TestRecordRelay:
    def test_relayed_records_reach_parent_loggers(self, caplog):
        record_queue = queue.Queue()
        listener = obs_logs.start_record_relay(record_queue)
        try:
            worker_logger = logging.getLogger("repro.test.relay")
            record = worker_logger.makeRecord(
                "repro.test.relay", logging.WARNING, __file__, 1,
                "hello from worker", (), None,
            )
            with caplog.at_level(logging.WARNING, logger="repro.test.relay"):
                record_queue.put(record)
                listener.stop()  # drains the queue before returning
                listener = None
            assert any(
                "hello from worker" in message for message in caplog.messages
            )
        finally:
            if listener is not None:
                listener.stop()

    def test_init_worker_logging_installs_queue_handler(self):
        record_queue = multiprocessing.Queue()
        obs_logs.init_worker_logging((record_queue, logging.INFO))
        root = logging.getLogger(obs_logs.ROOT_LOGGER)
        handlers = [
            handler for handler in root.handlers
            if isinstance(handler, logging.handlers.QueueHandler)
        ]
        try:
            assert handlers
            assert obs_logs.configured_level() == logging.INFO
        finally:
            for handler in handlers:
                root.removeHandler(handler)
            record_queue.close()
            record_queue.cancel_join_thread()

    def test_init_worker_logging_none_falls_back_to_env(self, monkeypatch):
        monkeypatch.delenv(obs_logs.ENV_VAR, raising=False)
        obs_logs.init_worker_logging(None)
        assert obs_logs.configured_level() is None
