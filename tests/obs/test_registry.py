"""Registry semantics and the view bindings over existing stat carriers."""

import math

import pytest

from repro.distributed.transport import TransportStats
from repro.obs.registry import (
    DEFAULT_LATENCY_BUCKETS_S,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    bind_city_metrics,
    bind_transport_stats,
)
from repro.service.metrics import CityMetrics


class TestInstruments:
    def test_counter_is_monotone(self):
        counter = Counter()
        counter.inc()
        counter.inc(2.5)
        assert counter.value == 3.5
        with pytest.raises(ValueError):
            counter.inc(-1)

    def test_counter_set_total_never_regresses(self):
        counter = Counter()
        counter.set_total(10)
        counter.set_total(4)  # a collector view must not go backwards
        assert counter.value == 10

    def test_gauge_moves_both_ways(self):
        gauge = Gauge()
        gauge.set(5)
        gauge.inc(-2)
        assert gauge.value == 3

    def test_histogram_buckets_and_totals(self):
        hist = Histogram(bounds=(1.0, 2.0))
        for value in (0.5, 1.5, 1.5, 99.0):
            hist.observe(value)
        assert hist.counts == [1, 2, 1]
        assert hist.count == 4
        assert hist.sum == pytest.approx(102.5)
        assert sum(hist.counts) == hist.count

    def test_histogram_set_state_validates_length(self):
        hist = Histogram(bounds=(1.0,))
        with pytest.raises(ValueError):
            hist.set_state([1, 2, 3], 0.0, 6)


class TestRegistry:
    def test_get_or_create_by_name_and_labels(self):
        registry = MetricsRegistry()
        a = registry.counter("repro_x_total", "help", city="a")
        again = registry.counter("repro_x_total", city="a")
        other = registry.counter("repro_x_total", city="b")
        assert a is again
        assert a is not other

    def test_kind_conflicts_are_rejected(self):
        registry = MetricsRegistry()
        registry.counter("repro_x_total")
        with pytest.raises(ValueError):
            registry.gauge("repro_x_total")

    def test_collect_runs_collectors_and_sorts(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("repro_b")
        registry.counter("repro_a_total")
        registry.register_collector(lambda reg: gauge.set(7))
        collected = registry.collect()
        assert list(collected) == ["repro_a_total", "repro_b"]
        kind, _help, metrics = collected["repro_b"]
        assert kind == "gauge"
        (metric,) = metrics.values()
        assert metric.value == 7


class TestCityMetricsView:
    def _metrics(self):
        metrics = CityMetrics()
        metrics.orders = 10
        metrics.batches = 3
        metrics.epochs = 1
        metrics.served = 6
        metrics.dispatch.record(0.02)
        metrics.dispatch.record(0.2)
        metrics.record_append(2, 0.05)
        return metrics

    def test_snapshot_values_reach_the_registry(self):
        registry = MetricsRegistry()
        bind_city_metrics(registry, self._metrics(), city="porto")
        collected = registry.collect()
        label = (("city", "porto"),)
        assert collected["repro_orders_total"][2][label].value == 10
        assert collected["repro_served_total"][2][label].value == 6
        assert collected["repro_serve_rate"][2][label].value == pytest.approx(0.6)
        dispatch = collected["repro_dispatch_latency_seconds"][2][label]
        assert dispatch.count == 2
        assert dispatch.sum == pytest.approx(0.22)
        assert sum(dispatch.counts) == dispatch.count

    def test_per_shard_append_histograms_get_shard_label(self):
        registry = MetricsRegistry()
        bind_city_metrics(registry, self._metrics(), city="porto")
        metrics = registry.collect()["repro_append_latency_seconds"][2]
        assert (("city", "porto"), ("shard", "2")) in metrics

    def test_serve_rate_without_finished_epochs_is_nan(self):
        registry = MetricsRegistry()
        metrics = CityMetrics()
        metrics.orders = 5  # no epochs finished yet -> serve_rate is None
        metrics.epochs = 0
        metrics.served = 0
        bind_city_metrics(registry, metrics, city="c")
        value = registry.collect()["repro_serve_rate"][2][(("city", "c"),)].value
        if metrics.serve_rate is None:
            assert math.isnan(value)
        else:
            assert value == metrics.serve_rate

    def test_counters_monotone_across_scrapes(self):
        registry = MetricsRegistry()
        metrics = self._metrics()
        bind_city_metrics(registry, metrics, city="porto")
        label = (("city", "porto"),)
        first = registry.collect()["repro_orders_total"][2][label].value
        metrics.orders += 7
        metrics.epochs += 1
        second = registry.collect()["repro_orders_total"][2][label].value
        assert second == first + 7


class TestTransportStatsView:
    def test_snapshot_keys_become_counters_and_gauges(self):
        stats = TransportStats(transport="shm")
        stats.record_shm(1, shm_bytes=1000, descriptor_bytes=64)
        stats.record_pickle(2, wire_bytes=500, fallback=True)
        registry = MetricsRegistry()
        bind_transport_stats(registry, stats, city="porto")
        collected = registry.collect()
        label = (("city", "porto"),)
        assert collected["repro_transport_shm_bytes_total"][2][label].value == 1000
        assert collected["repro_transport_pickle_fallbacks_total"][2][label].value == 1
        # bytes_over_pipe = descriptor + pickle bytes
        assert (
            collected["repro_transport_bytes_over_pipe_total"][2][label].value == 564
        )
        # shipment counts are monotone totals too
        assert collected["repro_transport_shm_shipments_total"][0] == "counter"

    def test_non_numeric_snapshot_keys_are_skipped(self):
        registry = MetricsRegistry()
        bind_transport_stats(registry, TransportStats(), kind="t")
        names = set(registry.collect())
        assert not any("transport_transport" in name for name in names)
        assert not any("shard_bytes" in name for name in names)


def test_default_buckets_are_sorted_and_span_expected_range():
    assert list(DEFAULT_LATENCY_BUCKETS_S) == sorted(DEFAULT_LATENCY_BUCKETS_S)
    assert DEFAULT_LATENCY_BUCKETS_S[0] == 0.005
    assert DEFAULT_LATENCY_BUCKETS_S[-1] == 10.0
