"""The flight recorder: nesting, stitching, bounded memory, the off switch."""

import threading

import pytest

from repro.obs import trace as obs_trace
from repro.obs.trace import (
    DROPPED,
    NO_PARENT,
    PHASE_NAMES,
    TraceRecorder,
    phase_of,
    phase_totals,
)


@pytest.fixture(autouse=True)
def _no_ambient_recorder():
    """Tests must not leak a thread-local recorder into each other."""
    obs_trace.disable_tracing()
    yield
    obs_trace.disable_tracing()


class TestRecorder:
    def test_span_nesting_is_implicit(self):
        recorder = TraceRecorder()
        with recorder.span("outer"):
            with recorder.span("inner"):
                pass
        spans = recorder.export()
        assert [s[2] for s in spans] == ["outer", "inner"]
        outer, inner = spans
        assert outer[1] == NO_PARENT
        assert inner[1] == outer[0]

    def test_span_interval_ordering(self):
        recorder = TraceRecorder()
        with recorder.span("outer"):
            with recorder.span("inner"):
                pass
        outer, inner = recorder.export()
        assert outer[3] <= inner[3] <= inner[4] <= outer[4]

    def test_attrs_are_frozen_tuples(self):
        recorder = TraceRecorder()
        with recorder.span("s", shard=3, kind="x"):
            pass
        (span,) = recorder.export()
        assert span[5] == (("shard", 3), ("kind", "x"))

    def test_explicit_parent_and_annotate(self):
        recorder = TraceRecorder()
        root = recorder.begin("root")
        child = recorder.begin("child", parent_id=root)
        recorder.annotate(child, extra=1)
        recorder.end(child)
        recorder.end(root)
        spans = recorder.export()
        assert spans[1][1] == root
        assert ("extra", 1) in spans[1][5]

    def test_end_pops_abandoned_children(self):
        recorder = TraceRecorder()
        outer = recorder.begin("outer")
        recorder.begin("abandoned")
        recorder.end(outer)  # never ended the child explicitly
        outer_span, inner_span = recorder.export()
        assert inner_span[4] is not None
        assert inner_span[4] == outer_span[4]
        # The stack is clean: a new span is a root again.
        fresh = recorder.begin("fresh")
        recorder.end(fresh)
        assert recorder.export()[2][1] == NO_PARENT

    def test_open_spans_export_closed_at_now(self):
        recorder = TraceRecorder()
        recorder.begin("open")
        (span,) = recorder.export()
        assert span[4] >= span[3]

    def test_bounded_memory_counts_drops(self):
        recorder = TraceRecorder(max_spans=2)
        assert recorder.begin("a") == 0
        assert recorder.begin("b") == 1
        assert recorder.begin("c") == DROPPED
        recorder.end(DROPPED)  # must be a harmless no-op
        assert recorder.dropped == 1
        assert len(recorder) == 2

    def test_mark_and_spans_since(self):
        recorder = TraceRecorder()
        with recorder.span("before"):
            pass
        mark = recorder.mark()
        with recorder.span("after"):
            pass
        assert [s[2] for s in recorder.spans_since(mark)] == ["after"]

    def test_per_thread_stacks_do_not_interleave(self):
        recorder = TraceRecorder()
        barrier = threading.Barrier(2)

        def worker():
            barrier.wait()
            with recorder.span("thread_outer"):
                with recorder.span("thread_inner"):
                    pass

        thread = threading.Thread(target=worker)
        thread.start()
        barrier.wait()
        with recorder.span("main_outer"):
            thread.join()
        by_name = {s[2]: s for s in recorder.export()}
        assert by_name["thread_outer"][1] == NO_PARENT
        assert by_name["thread_inner"][1] == by_name["thread_outer"][0]
        assert by_name["main_outer"][1] == NO_PARENT


class TestAdopt:
    def test_adopt_remaps_ids_and_reparents_roots(self):
        worker = TraceRecorder()
        with worker.span("shard_solve", pid=123):
            with worker.span("hungarian"):
                pass
        parent = TraceRecorder()
        root = parent.begin("solve")
        adopted = parent.adopt(worker.export(), parent_id=root, shard=7)
        parent.end(root)
        assert adopted == 2
        spans = {s[2]: s for s in parent.export()}
        assert spans["shard_solve"][1] == root
        assert ("shard", 7) in spans["shard_solve"][5]
        # Child keeps its worker-side parent, remapped into this recorder.
        assert spans["hungarian"][1] == spans["shard_solve"][0]
        assert ("shard", 7) not in spans["hungarian"][5]

    def test_adopt_respects_budget(self):
        worker = TraceRecorder()
        for _ in range(3):
            with worker.span("s"):
                pass
        parent = TraceRecorder(max_spans=2)
        assert parent.adopt(worker.export()) == 2
        assert parent.dropped == 1


class TestModuleSwitch:
    def test_disabled_span_is_shared_null(self):
        assert obs_trace.span("anything") is obs_trace.span("else")
        with obs_trace.span("noop", attr=1):
            pass  # records nowhere, raises nothing

    def test_enable_records_and_disable_returns(self):
        recorder = obs_trace.enable_tracing()
        assert obs_trace.tracing_enabled()
        assert obs_trace.active_recorder() is recorder
        with obs_trace.span("recorded"):
            pass
        returned = obs_trace.disable_tracing()
        assert returned is recorder
        assert not obs_trace.tracing_enabled()
        assert [s[2] for s in recorder.export()] == ["recorded"]

    def test_install_recorder_saves_and_restores(self):
        mine = TraceRecorder()
        previous = obs_trace.install_recorder(mine)
        assert previous is None
        assert obs_trace.active_recorder() is mine
        assert obs_trace.install_recorder(previous) is mine
        assert obs_trace.active_recorder() is None

    def test_recorder_is_thread_local(self):
        obs_trace.enable_tracing()
        seen = {}

        def worker():
            seen["recorder"] = obs_trace.active_recorder()

        thread = threading.Thread(target=worker)
        thread.start()
        thread.join()
        assert seen["recorder"] is None


class TestPhases:
    def test_leaf_names_map_to_phases(self):
        assert phase_of("candidates") == "candidates"
        assert phase_of("hungarian") == "hungarian"
        for name in ("lp", "greedy", "lagrangian"):
            assert phase_of(name) == "lp"
        assert phase_of("transport:ship_delta") == "transport"
        assert phase_of("transport:attach") == "transport"
        assert phase_of("merge") == "merge"

    def test_container_names_are_uncategorised(self):
        for name in ("shard_solve", "shard_stream", "append", "flush",
                      "stream", "solve", "rebuild", "gateway:ship"):
            assert phase_of(name) is None

    def test_phase_totals_order_and_sums(self):
        spans = (
            (0, NO_PARENT, "append", 0.0, 10.0, ()),       # container: ignored
            (1, 0, "candidates", 0.0, 1.5, ()),
            (2, 0, "hungarian", 1.5, 2.0, ()),
            (3, 0, "candidates", 2.0, 2.25, ()),
        )
        totals = phase_totals(spans)
        assert tuple(name for name, _ in totals) == PHASE_NAMES
        by_name = dict(totals)
        assert by_name["candidates"] == pytest.approx(1.75)
        assert by_name["hungarian"] == pytest.approx(0.5)
        assert by_name["lp"] == 0.0
