"""Tests for the Fig. 2 tightness construction."""

import pytest

from repro.offline import build_tight_example, exact_optimum, greedy_assignment


class TestConstruction:
    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            build_tight_example(chain_length=1)
        with pytest.raises(ValueError):
            build_tight_example(chain_length=3, epsilon=0.0)
        with pytest.raises(ValueError):
            build_tight_example(chain_length=3, epsilon=1.0)

    def test_sizes(self):
        example = build_tight_example(chain_length=5, epsilon=0.05)
        # D chain tasks + 1 extra task; 1 long-haul driver + D local drivers.
        assert example.instance.task_count == 6
        assert example.instance.driver_count == 6
        assert example.chain_length == 5

    def test_local_drivers_see_exactly_their_task(self):
        example = build_tight_example(chain_length=4, epsilon=0.05)
        for k in range(4):
            task_map = example.instance.task_map(f"local-{k}")
            assert [int(m) for m in task_map.entry_tasks()] == [k]

    def test_extra_task_is_exclusive_to_long_haul(self):
        example = build_tight_example(chain_length=4, epsilon=0.05)
        extra_index = example.instance.task_count - 1
        long_haul = example.instance.task_map("long-haul")
        assert extra_index in set(int(m) for m in long_haul.entry_tasks())
        for k in range(4):
            local = example.instance.task_map(f"local-{k}")
            assert extra_index not in set(int(m) for m in local.usable_tasks())

    def test_extra_task_cannot_be_combined_with_chain(self):
        example = build_tight_example(chain_length=4, epsilon=0.05)
        long_haul = example.instance.task_map("long-haul")
        extra_index = example.instance.task_count - 1
        for k in range(4):
            assert not long_haul.arc_exists(extra_index, k)
            assert not long_haul.arc_exists(k, extra_index)


class TestAdversarialBehaviour:
    def test_greedy_matches_predicted_value(self):
        example = build_tight_example(chain_length=4, epsilon=0.05)
        solution = greedy_assignment(example.instance)
        solution.validate()
        assert solution.total_value == pytest.approx(example.expected_greedy_value, rel=1e-6)
        # Greedy gives the whole chain to the long-haul driver.
        assert solution.plan_for("long-haul").task_indices == tuple(range(4))

    def test_exact_matches_predicted_optimum(self):
        example = build_tight_example(chain_length=4, epsilon=0.05)
        result = exact_optimum(example.instance)
        assert result.optimum == pytest.approx(example.expected_optimal_value, rel=1e-6)

    def test_achieved_ratio_close_to_theoretical_bound(self):
        example = build_tight_example(chain_length=5, epsilon=0.02)
        assert example.expected_ratio == pytest.approx(example.theoretical_bound, abs=0.05)
        assert example.expected_ratio >= example.theoretical_bound - 1e-9

    @pytest.mark.parametrize("chain_length", [2, 3, 6])
    def test_greedy_respects_theorem_bound_on_adversarial_instances(self, chain_length):
        example = build_tight_example(chain_length=chain_length, epsilon=0.05)
        greedy = greedy_assignment(example.instance).total_value
        optimum = exact_optimum(example.instance).optimum
        assert greedy >= optimum / (chain_length + 1) - 1e-6

    def test_smaller_epsilon_pushes_ratio_towards_bound(self):
        loose = build_tight_example(chain_length=4, epsilon=0.2)
        tight = build_tight_example(chain_length=4, epsilon=0.02)
        gap_loose = loose.expected_ratio - loose.theoretical_bound
        gap_tight = tight.expected_ratio - tight.theoretical_bound
        assert gap_tight < gap_loose
