"""The shard-level LP/min-cost-flow exact tier (``repro.offline.flow``).

Three concerns:

* correctness — the LP-tier optimum matches the MILP/brute force on sizes
  where those are tractable, and the certificate fields are honest;
* degenerate robustness — every edge case a spatial shard can produce
  (empty, single driver, single task, all-infeasible, zero-cost ties) must
  match greedy's short-circuit behaviour and never raise
  :class:`ExactSolverError`;
* determinism — tie-breaking is pinned so the distributed parity contracts
  can rely on bit-identical merges.
"""

import pytest

from repro.core import MarketSolution, Objective
from repro.offline import (
    DEFAULT_GAP_THRESHOLD,
    ExactSolverError,
    ShardBounds,
    brute_force_optimum,
    exact_optimum,
    greedy_assignment,
    lagrangian_bound,
    lp_flow_optimum,
    relative_gap,
    solve_exact_tier,
)

from ..conftest import build_chain_instance, build_random_instance


@pytest.fixture(scope="module")
def chain():
    return build_chain_instance()


@pytest.fixture(scope="module")
def small():
    return build_random_instance(task_count=20, driver_count=6, seed=31)


class TestRelativeGap:
    def test_zero_when_value_meets_bound(self):
        assert relative_gap(10.0, 10.0) == 0.0

    def test_clamped_at_zero_on_float_noise(self):
        assert relative_gap(10.0 + 1e-12, 10.0) == 0.0

    def test_positive_gap(self):
        assert relative_gap(9.0, 10.0) == pytest.approx(0.1)

    def test_zero_bound_does_not_divide_by_zero(self):
        assert relative_gap(0.0, 0.0) == 0.0


class TestLpFlowOptimum:
    def test_chain_matches_exact(self, chain):
        flow = lp_flow_optimum(chain)
        exact = exact_optimum(chain)
        assert flow.optimum == pytest.approx(exact.optimum, rel=1e-6)
        assert flow.solution.plan_for("chainer").task_indices == (0, 1)
        flow.solution.validate()

    def test_small_matches_exact(self, small):
        flow = lp_flow_optimum(small)
        exact = exact_optimum(small)
        assert flow.optimum == pytest.approx(exact.optimum, rel=1e-6, abs=1e-6)
        flow.solution.validate()

    def test_tiny_matches_brute_force(self):
        instance = build_random_instance(task_count=8, driver_count=3, seed=41)
        flow = lp_flow_optimum(instance)
        brute = brute_force_optimum(instance)
        assert flow.optimum == pytest.approx(brute.optimum, rel=1e-6, abs=1e-6)

    def test_bound_sandwich(self, small):
        greedy = greedy_assignment(small).total_value
        flow = lp_flow_optimum(small)
        assert greedy <= flow.optimum + 1e-6
        assert flow.optimum <= flow.upper_bound + 1e-6
        assert flow.optimality_gap >= 0.0

    def test_integral_certificate_closes_the_gap(self, small):
        flow = lp_flow_optimum(small)
        if flow.integral:
            assert flow.optimum == pytest.approx(flow.upper_bound, rel=1e-6)
            assert not flow.repaired
            assert flow.fractional_arc_count == 0

    def test_incumbent_floor(self, small):
        """Whatever the LP does, it never ships below a supplied incumbent."""
        incumbent = greedy_assignment(small)
        flow = lp_flow_optimum(small, incumbent=incumbent)
        assert flow.optimum >= incumbent.total_value - 1e-9

    def test_social_welfare_objective(self, small):
        flow = lp_flow_optimum(small, objective=Objective.SOCIAL_WELFARE)
        exact = exact_optimum(small, objective=Objective.SOCIAL_WELFARE)
        assert flow.optimum == pytest.approx(exact.optimum, rel=1e-6, abs=1e-6)


class TestDegenerateShards:
    """Satellite sweep: every degenerate shard shape the partitioner can
    produce must short-circuit exactly like greedy and never raise."""

    def test_no_drivers(self, chain):
        empty = chain.with_drivers([])
        flow = lp_flow_optimum(empty)
        assert flow.optimum == 0.0
        assert flow.solver_status == "empty"
        assert flow.integral and not flow.repaired
        solution, bounds = solve_exact_tier(empty)
        assert solution.total_value == 0.0
        assert bounds == ShardBounds.zero()

    def test_no_tasks(self, chain):
        empty = chain.with_tasks([])
        flow = lp_flow_optimum(empty)
        assert flow.optimum == 0.0
        assert flow.upper_bound == 0.0
        solution, bounds = solve_exact_tier(empty)
        assert solution.served_count == 0
        assert bounds.optimality_gap == 0.0

    def test_single_driver_single_task(self, chain):
        shard = chain.with_drivers([chain.drivers[0]]).with_tasks([chain.tasks[0]])
        flow = lp_flow_optimum(shard)
        greedy = greedy_assignment(shard)
        assert flow.optimum == pytest.approx(greedy.total_value, rel=1e-9)
        assert flow.solution.assignment() == greedy.assignment()

    def test_all_infeasible_tasks(self, chain):
        """Only the stranded driver: no task fits her window, so the exact
        tier must agree with greedy's empty answer, bound included."""
        stranded = next(d for d in chain.drivers if d.driver_id == "stranded")
        shard = chain.with_drivers([stranded])
        flow = lp_flow_optimum(shard)
        assert flow.optimum == 0.0
        assert flow.solution.served_count == 0
        assert flow.upper_bound <= 1e-9
        solution, bounds = solve_exact_tier(shard)
        assert solution.served_count == 0
        assert bounds.optimality_gap == 0.0

    def test_zero_cost_ties_are_deterministic(self, chain):
        """Two drivers with identical geometry competing for the same task:
        a degenerate tie the LP may resolve either way — the tier must pick
        the same winner every time."""
        from dataclasses import replace

        twin_a = replace(chain.drivers[0], driver_id="twin-a")
        twin_b = replace(chain.drivers[0], driver_id="twin-b")
        shard = chain.with_drivers([twin_a, twin_b]).with_tasks([chain.tasks[0]])
        first = lp_flow_optimum(shard)
        for _ in range(3):
            again = lp_flow_optimum(shard)
            assert again.solution.assignment() == first.solution.assignment()
            assert again.optimum == first.optimum

    def test_never_raises_exact_solver_error(self, chain):
        """The whole sweep above, again, under the tier entry point — the
        coordinator relies on lp/auto never needing a size guard."""
        shards = [
            chain,
            chain.with_drivers([]),
            chain.with_tasks([]),
            chain.with_drivers([chain.drivers[1]]),
            chain.with_tasks([chain.tasks[0]]),
        ]
        for shard in shards:
            for mode in ("lp", "auto"):
                try:
                    solution, bounds = solve_exact_tier(shard, mode=mode)
                except ExactSolverError as exc:  # pragma: no cover - the bug
                    pytest.fail(f"exact tier raised on a degenerate shard: {exc}")
                assert bounds.optimality_gap >= 0.0
                assert bounds.greedy_gap >= 0.0
                solution.validate()


class TestSolveExactTier:
    def test_lp_mode_sandwich(self, small):
        solution, bounds = solve_exact_tier(small, mode="lp")
        assert bounds.chosen_solver == "lp"
        assert bounds.lp_ran
        assert bounds.greedy_value <= bounds.lp_value + 1e-6
        assert bounds.lp_value <= bounds.upper_bound + 1e-6
        assert bounds.upper_bound <= bounds.lagrangian_bound + 1e-6
        assert solution.total_value == pytest.approx(bounds.lp_value)

    def test_auto_mode_skips_lp_on_loose_threshold(self, small):
        solution, bounds = solve_exact_tier(small, mode="auto", gap_threshold=1.0)
        assert bounds.chosen_solver == "greedy"
        assert not bounds.lp_ran
        assert bounds.lp_value == pytest.approx(bounds.greedy_value)
        assert solution.total_value == pytest.approx(bounds.greedy_value)

    def test_auto_mode_runs_lp_on_zero_threshold(self, small):
        greedy = greedy_assignment(small).total_value
        bound = lagrangian_bound(small, iterations=40, target_value=greedy).upper_bound
        solution, bounds = solve_exact_tier(small, mode="auto", gap_threshold=0.0)
        if relative_gap(greedy, bound) > 0.0:
            assert bounds.chosen_solver == "lp"
            assert bounds.lp_ran
        assert solution.total_value >= greedy - 1e-9

    def test_unknown_mode_rejected(self, small):
        with pytest.raises(ValueError, match="unknown exact-tier mode"):
            solve_exact_tier(small, mode="milp")

    def test_default_threshold_exported(self):
        assert 0.0 < DEFAULT_GAP_THRESHOLD < 1.0

    def test_determinism_across_repeat_solves(self, small):
        first_solution, first_bounds = solve_exact_tier(small)
        for _ in range(2):
            solution, bounds = solve_exact_tier(small)
            assert solution.assignment() == first_solution.assignment()
            assert bounds == first_bounds

    def test_bounds_as_dict_round_trip(self, small):
        _, bounds = solve_exact_tier(small)
        record = bounds.as_dict()
        assert record["optimality_gap"] >= 0.0
        assert record["upper_bound"] == pytest.approx(
            min(record["lp_bound"], record["lagrangian_bound"])
        )
        assert set(record) >= {
            "greedy_value", "lp_value", "lp_bound", "lagrangian_bound",
            "chosen_solver", "lp_ran", "lp_integral", "lp_repaired",
        }

    def test_returns_market_solution(self, small):
        solution, _ = solve_exact_tier(small)
        assert isinstance(solution, MarketSolution)
        solution.validate()
