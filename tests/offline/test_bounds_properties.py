"""Property-test harness pinning the exact tier's bound sandwich.

Hypothesis draws random shard instances (through the same trace pipeline the
scenario compiler uses, so the geometry is realistic) and asserts the
invariants the distributed coordinator's parity contract 17 leans on:

* the sandwich ``greedy <= LP-tier value <= Z*_f <= Lagrangian bound`` holds
  on every instance, for both objectives;
* on instances small enough to brute-force, the LP tier's certified optimum
  equals the true optimum;
* tie-breaking is seed-deterministic — the same instance always yields the
  same assignment, which is what makes sharded merges bit-identical.

The ``repro-ci`` profile in ``tests/conftest.py`` derandomises the example
stream, so CI and local runs see identical draws.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import Objective
from repro.offline import (
    brute_force_optimum,
    greedy_assignment,
    lagrangian_bound,
    lp_flow_optimum,
    solve_exact_tier,
)

from ..conftest import build_random_instance

TOL = 1e-6

#: Shard-sized instances: big enough to exercise chaining, small enough that
#: hypothesis can afford dozens of LP solves.
shard_instances = st.builds(
    build_random_instance,
    task_count=st.integers(min_value=2, max_value=18),
    driver_count=st.integers(min_value=1, max_value=6),
    seed=st.integers(min_value=0, max_value=2**16),
)

#: Tiny instances where ``brute_force_optimum`` enumerates every path.
tiny_instances = st.builds(
    build_random_instance,
    task_count=st.integers(min_value=1, max_value=7),
    driver_count=st.integers(min_value=1, max_value=3),
    seed=st.integers(min_value=0, max_value=2**16),
)


class TestSandwichInvariant:
    @given(instance=shard_instances)
    @settings(max_examples=25)
    def test_greedy_below_lp_below_bounds(self, instance):
        greedy = greedy_assignment(instance).total_value
        solution, bounds = solve_exact_tier(instance, mode="lp")
        assert bounds.greedy_value == pytest.approx(greedy, rel=1e-9, abs=TOL)
        assert bounds.greedy_value <= bounds.lp_value + TOL
        assert bounds.lp_value <= bounds.lp_bound + TOL
        assert bounds.lp_bound <= bounds.lagrangian_bound + TOL
        assert bounds.optimality_gap >= 0.0
        assert bounds.greedy_gap >= 0.0
        assert solution.total_value == pytest.approx(bounds.lp_value, rel=1e-9, abs=TOL)
        solution.validate()

    @given(instance=shard_instances, threshold=st.floats(min_value=0.0, max_value=0.5))
    @settings(max_examples=15)
    def test_auto_mode_preserves_the_sandwich(self, instance, threshold):
        solution, bounds = solve_exact_tier(instance, mode="auto", gap_threshold=threshold)
        assert bounds.greedy_value <= bounds.lp_value + TOL
        assert bounds.lp_value <= bounds.upper_bound + TOL
        assert bounds.chosen_solver in ("greedy", "lp")
        if bounds.chosen_solver == "greedy":
            assert not bounds.lp_ran
            # The skip is only allowed when the certified gap clears the knob.
            assert bounds.greedy_gap <= threshold + TOL
        solution.validate()

    @given(instance=shard_instances)
    @settings(max_examples=10)
    def test_social_welfare_sandwich(self, instance):
        objective = Objective.SOCIAL_WELFARE
        greedy = greedy_assignment(instance, objective=objective).total_value
        flow = lp_flow_optimum(instance, objective=objective)
        lagr = lagrangian_bound(
            instance, objective, iterations=30, target_value=greedy
        ).upper_bound
        assert greedy <= flow.optimum + TOL
        assert flow.optimum <= flow.upper_bound + TOL
        assert flow.optimum <= lagr + TOL


class TestExactnessOnSmallInstances:
    @given(instance=tiny_instances)
    @settings(max_examples=20)
    def test_lp_tier_equals_brute_force(self, instance):
        flow = lp_flow_optimum(instance)
        brute = brute_force_optimum(instance)
        assert flow.optimum == pytest.approx(brute.optimum, rel=1e-6, abs=TOL)

    @given(instance=tiny_instances)
    @settings(max_examples=10)
    def test_integral_vertices_close_the_gap(self, instance):
        flow = lp_flow_optimum(instance)
        if flow.integral:
            assert flow.optimality_gap <= 1e-6


class TestSeedDeterminism:
    @given(
        task_count=st.integers(min_value=2, max_value=15),
        driver_count=st.integers(min_value=1, max_value=5),
        seed=st.integers(min_value=0, max_value=2**16),
    )
    @settings(max_examples=15)
    def test_rebuilt_instance_resolves_identically(self, task_count, driver_count, seed):
        """Building the same instance twice and solving each once must give
        byte-equal assignments — the property the process-pool parity gate
        (contract 17) reduces to."""
        first_instance = build_random_instance(task_count, driver_count, seed)
        second_instance = build_random_instance(task_count, driver_count, seed)
        first_solution, first_bounds = solve_exact_tier(first_instance)
        second_solution, second_bounds = solve_exact_tier(second_instance)
        assert first_solution.assignment() == second_solution.assignment()
        assert first_bounds == second_bounds
