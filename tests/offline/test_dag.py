"""Tests for the max-profit-path dynamic program."""

import numpy as np
import pytest

from repro.offline import EMPTY_PATH, best_path, best_paths_for_all, enumerate_paths

from ..conftest import build_chain_instance, build_random_instance


@pytest.fixture(scope="module")
def chain():
    return build_chain_instance()


@pytest.fixture(scope="module")
def random_instance():
    return build_random_instance(task_count=25, driver_count=6, seed=17)


class TestBestPathOnChainInstance:
    def test_chainer_best_path_is_the_full_chain(self, chain):
        task_map = chain.task_map("chainer")
        result = best_path(task_map)
        assert result.path == (0, 1)
        assert result.profit == pytest.approx(task_map.path_profit([0, 1]))

    def test_stranded_driver_gets_empty_path(self, chain):
        result = best_path(chain.task_map("stranded"))
        assert result is EMPTY_PATH
        assert result.is_empty
        assert result.profit == 0.0

    def test_availability_mask_restricts_path(self, chain):
        task_map = chain.task_map("chainer")
        only_second = np.array([False, True])
        result = best_path(task_map, available=only_second)
        assert result.path == (1,)
        assert result.profit == pytest.approx(task_map.path_profit([1]))

    def test_all_unavailable_gives_empty_path(self, chain):
        task_map = chain.task_map("chainer")
        result = best_path(task_map, available=np.zeros(2, dtype=bool))
        assert result.is_empty

    def test_wrong_mask_shape_rejected(self, chain):
        with pytest.raises(ValueError):
            best_path(chain.task_map("chainer"), available=np.ones(5, dtype=bool))

    def test_best_paths_for_all(self, chain):
        results = best_paths_for_all(chain.task_maps)
        assert results["chainer"].path == (0, 1)
        assert results["stranded"].is_empty


class TestBestPathAgainstEnumeration:
    """The DP must match exhaustive path enumeration on small instances."""

    def test_matches_enumeration_for_every_driver(self, random_instance):
        for driver in random_instance.drivers:
            task_map = random_instance.task_map(driver.driver_id)
            dp = best_path(task_map)
            candidates = enumerate_paths(task_map)
            brute = 0.0
            for path in candidates:
                brute = max(brute, task_map.path_profit(path))
            assert dp.profit == pytest.approx(max(brute, 0.0), rel=1e-9, abs=1e-9)

    def test_matches_enumeration_with_random_masks(self, random_instance):
        rng = np.random.default_rng(5)
        task_count = random_instance.task_count
        for driver in random_instance.drivers[:3]:
            task_map = random_instance.task_map(driver.driver_id)
            for _ in range(3):
                mask = rng.random(task_count) > 0.4
                dp = best_path(task_map, available=mask)
                brute = 0.0
                for path in enumerate_paths(task_map, available=mask):
                    brute = max(brute, task_map.path_profit(path))
                assert dp.profit == pytest.approx(max(brute, 0.0), rel=1e-9, abs=1e-9)

    def test_returned_path_is_feasible_and_consistent(self, random_instance):
        for driver in random_instance.drivers:
            task_map = random_instance.task_map(driver.driver_id)
            result = best_path(task_map)
            assert task_map.is_feasible_path(result.path)
            if result.path:
                assert result.profit == pytest.approx(task_map.path_profit(result.path))
                assert result.profit > 0.0

    def test_social_welfare_objective_never_below_profit_objective(self, random_instance):
        """With b_m >= p_m (or equal), the welfare-optimal path value is >= the
        profit-optimal path value."""
        for driver in random_instance.drivers:
            task_map = random_instance.task_map(driver.driver_id)
            profit = best_path(task_map).profit
            welfare = best_path(task_map, use_valuation=True).profit
            assert welfare >= profit - 1e-9


class TestEnumeratePaths:
    def test_enumeration_counts_chain_instance(self, chain):
        paths = enumerate_paths(chain.task_map("chainer"))
        assert set(paths) == {(0,), (1,), (0, 1)}
        assert enumerate_paths(chain.task_map("stranded")) == []

    def test_enumeration_cap(self, random_instance):
        task_map = random_instance.task_map(random_instance.drivers[0].driver_id)
        if enumerate_paths(task_map):
            with pytest.raises(RuntimeError):
                enumerate_paths(task_map, max_paths=1)

    def test_empty_instance(self, chain):
        empty = chain.with_tasks([])
        assert enumerate_paths(empty.task_map("chainer")) == []
        assert best_path(empty.task_map("chainer")) is EMPTY_PATH
