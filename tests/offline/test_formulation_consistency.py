"""Consistency checks between the arc-flow formulation and the path model.

Any feasible assignment (e.g. the greedy solution) must be expressible as a
0/1 arc-flow vector that (a) satisfies every constraint row of the model and
(b) reproduces exactly the same objective value.  This pins the ILP matrices
to the path-based profit arithmetic used everywhere else in the library.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.market.taskmap import SINK_NODE, SOURCE_NODE
from repro.offline import build_arc_flow_model, greedy_assignment

from ..conftest import build_chain_instance, build_random_instance
from ..test_properties import build_instance


def assignment_to_arc_vector(model, assignment):
    """Encode a ``driver -> task list`` assignment as a 0/1 arc-flow vector."""
    values = np.zeros(model.variable_count)
    assigned = dict(assignment)
    for driver in model.instance.drivers:
        path = list(assigned.get(driver.driver_id, ()))
        if not path:
            values[model.arc_index((driver.driver_id, SOURCE_NODE, SINK_NODE))] = 1.0
            continue
        values[model.arc_index((driver.driver_id, SOURCE_NODE, path[0]))] = 1.0
        for tail, head in zip(path[:-1], path[1:]):
            values[model.arc_index((driver.driver_id, tail, head))] = 1.0
        values[model.arc_index((driver.driver_id, path[-1], SINK_NODE))] = 1.0
    return values


def assert_flow_is_feasible(model, values):
    eq = model.A_eq @ values
    assert np.allclose(eq, model.b_eq, atol=1e-9)
    ub = model.A_ub @ values
    assert np.all(ub <= model.b_ub + 1e-9)


class TestEncodingOnFixedInstances:
    def test_chain_greedy_solution_encodes_feasibly(self):
        instance = build_chain_instance()
        model = build_arc_flow_model(instance)
        solution = greedy_assignment(instance)
        values = assignment_to_arc_vector(model, solution.assignment())
        assert_flow_is_feasible(model, values)
        objective = float(model.objective @ values) + model.constant
        assert objective == pytest.approx(solution.total_value, rel=1e-9)

    def test_idle_everyone_encodes_to_zero_objective(self):
        instance = build_random_instance(task_count=15, driver_count=4, seed=111)
        model = build_arc_flow_model(instance)
        values = assignment_to_arc_vector(model, {})
        assert_flow_is_feasible(model, values)
        assert float(model.objective @ values) + model.constant == pytest.approx(0.0, abs=1e-9)

    def test_decoding_inverts_encoding(self):
        instance = build_random_instance(task_count=20, driver_count=5, seed=112)
        model = build_arc_flow_model(instance)
        solution = greedy_assignment(instance)
        values = assignment_to_arc_vector(model, solution.assignment())
        decoded = model.solution_to_assignment(values)
        assert decoded == solution.assignment()


class TestEncodingProperty:
    @given(
        st.tuples(
            st.integers(min_value=0, max_value=5_000),
            st.integers(min_value=3, max_value=12),
            st.integers(min_value=1, max_value=4),
        )
    )
    @settings(
        max_examples=20,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    def test_greedy_solution_always_encodes_consistently(self, params):
        seed, tasks, drivers = params
        instance = build_instance(seed, tasks, drivers)
        model = build_arc_flow_model(instance)
        solution = greedy_assignment(instance)
        values = assignment_to_arc_vector(model, solution.assignment())
        assert_flow_is_feasible(model, values)
        objective = float(model.objective @ values) + model.constant
        assert objective == pytest.approx(solution.total_value, rel=1e-9, abs=1e-9)
