"""Tests for the arc-flow formulation, LP relaxation, exact MILP and the
Lagrangian bound — and the ordering invariants between them.

The chain of inequalities exercised here is the backbone of the paper's
evaluation methodology:

    greedy value  <=  Z* (exact optimum)  <=  Z*_f (LP relaxation)
                                         <=  L(lambda) (any Lagrangian bound)
"""

import numpy as np
import pytest

from repro.core import MarketSolution, Objective
from repro.market.taskmap import SINK_NODE, SOURCE_NODE
from repro.offline import (
    ExactSolverError,
    brute_force_optimum,
    build_arc_flow_model,
    exact_optimum,
    greedy_assignment,
    lagrangian_bound,
    lp_relaxation_bound,
)

from ..conftest import build_chain_instance, build_random_instance


@pytest.fixture(scope="module")
def chain():
    return build_chain_instance()


@pytest.fixture(scope="module")
def small():
    return build_random_instance(task_count=20, driver_count=6, seed=31)


class TestArcFlowModel:
    def test_chain_model_shape(self, chain):
        model = build_arc_flow_model(chain)
        # chainer: direct, source->0, source->1, 0->sink, 1->sink, 0->1 = 6 arcs
        # stranded: direct arc only.
        assert model.variable_count == 7
        assert model.constant == pytest.approx(
            sum(chain.task_map(d.driver_id).direct_leg.cost for d in chain.drivers)
        )
        assert model.A_eq.shape[0] == len(model.b_eq)
        assert model.A_ub.shape[0] == len(model.b_ub)

    def test_arc_index_lookup(self, chain):
        model = build_arc_flow_model(chain)
        idx = model.arc_index(("chainer", SOURCE_NODE, SINK_NODE))
        assert 0 <= idx < model.variable_count
        with pytest.raises(KeyError):
            model.arc_index(("chainer", 1, 0))

    def test_solution_decoding(self, chain):
        model = build_arc_flow_model(chain)
        values = np.zeros(model.variable_count)
        values[model.arc_index(("stranded", SOURCE_NODE, SINK_NODE))] = 1.0
        values[model.arc_index(("chainer", SOURCE_NODE, 0))] = 1.0
        values[model.arc_index(("chainer", 0, 1))] = 1.0
        values[model.arc_index(("chainer", 1, SINK_NODE))] = 1.0
        assignment = model.solution_to_assignment(values)
        assert assignment == {"chainer": (0, 1)}

    def test_objective_of_decoded_chain_matches_path_profit(self, chain):
        model = build_arc_flow_model(chain)
        values = np.zeros(model.variable_count)
        values[model.arc_index(("stranded", SOURCE_NODE, SINK_NODE))] = 1.0
        values[model.arc_index(("chainer", SOURCE_NODE, 0))] = 1.0
        values[model.arc_index(("chainer", 0, 1))] = 1.0
        values[model.arc_index(("chainer", 1, SINK_NODE))] = 1.0
        objective_value = float(model.objective @ values) + model.constant
        expected = chain.task_map("chainer").path_profit([0, 1])
        assert objective_value == pytest.approx(expected, rel=1e-9)


class TestLpRelaxation:
    def test_chain_bound_equals_integral_optimum(self, chain):
        result = lp_relaxation_bound(chain)
        assert result.upper_bound == pytest.approx(
            chain.task_map("chainer").path_profit([0, 1]), rel=1e-6
        )
        assert result.fractional_arc_count >= 0

    def test_bound_dominates_greedy(self, small):
        greedy = greedy_assignment(small).total_value
        bound = lp_relaxation_bound(small).upper_bound
        assert bound >= greedy - 1e-6

    def test_bound_dominates_exact(self, small):
        exact = exact_optimum(small).optimum
        bound = lp_relaxation_bound(small).upper_bound
        assert bound >= exact - 1e-6

    def test_rationality_flag_only_tightens(self, small):
        with_ir = lp_relaxation_bound(small, include_rationality=True).upper_bound
        without_ir = lp_relaxation_bound(small, include_rationality=False).upper_bound
        assert with_ir <= without_ir + 1e-6

    def test_social_welfare_bound_at_least_profit_bound(self, small):
        profit = lp_relaxation_bound(small, objective=Objective.DRIVERS_PROFIT).upper_bound
        welfare = lp_relaxation_bound(small, objective=Objective.SOCIAL_WELFARE).upper_bound
        assert welfare >= profit - 1e-6

    def test_no_driver_instance(self, chain):
        empty = chain.with_drivers([])
        assert lp_relaxation_bound(empty).upper_bound == pytest.approx(0.0)


class TestExactSolver:
    def test_chain_optimum(self, chain):
        result = exact_optimum(chain)
        result.solution.validate()
        assert result.optimum == pytest.approx(
            chain.task_map("chainer").path_profit([0, 1]), rel=1e-6
        )
        assert result.solution.plan_for("chainer").task_indices == (0, 1)

    def test_exact_at_least_greedy(self, small):
        greedy = greedy_assignment(small).total_value
        exact = exact_optimum(small).optimum
        assert exact >= greedy - 1e-6

    def test_exact_solution_is_feasible(self, small):
        result = exact_optimum(small)
        result.solution.validate()
        assert result.solution.total_value == pytest.approx(result.optimum, rel=1e-6)

    def test_size_guard(self, small):
        with pytest.raises(ExactSolverError):
            exact_optimum(small, size_limit=(2, 5))

    def test_matches_brute_force_on_tiny_instance(self):
        instance = build_random_instance(task_count=8, driver_count=3, seed=41)
        milp = exact_optimum(instance)
        brute = brute_force_optimum(instance)
        assert milp.optimum == pytest.approx(brute.optimum, rel=1e-6, abs=1e-6)
        brute.solution.validate()

    def test_empty_market(self, chain):
        empty = chain.with_drivers([])
        result = exact_optimum(empty)
        assert result.optimum == pytest.approx(0.0)
        assert isinstance(result.solution, MarketSolution)


class TestLagrangianBound:
    def test_valid_upper_bound(self, small):
        exact = exact_optimum(small).optimum
        bound = lagrangian_bound(small, iterations=25).upper_bound
        assert bound >= exact - 1e-6

    def test_polyak_step_tightens_bound(self, small):
        greedy = greedy_assignment(small).total_value
        plain = lagrangian_bound(small, iterations=25).upper_bound
        polyak = lagrangian_bound(small, iterations=25, target_value=greedy).upper_bound
        assert polyak >= greedy - 1e-6
        assert polyak <= plain + 1e-6

    def test_trajectory_recorded(self, small):
        result = lagrangian_bound(small, iterations=10)
        assert result.iterations == 10
        assert len(result.bounds_per_iteration) == 10
        assert result.upper_bound == pytest.approx(min(result.bounds_per_iteration))
        assert (result.multipliers >= 0).all()

    def test_invalid_arguments(self, small):
        with pytest.raises(ValueError):
            lagrangian_bound(small, iterations=0)
        with pytest.raises(ValueError):
            lagrangian_bound(small, seed_multipliers=np.array([1.0]))
        with pytest.raises(ValueError):
            lagrangian_bound(
                small, seed_multipliers=-np.ones(small.task_count)
            )

    def test_zero_multipliers_give_sum_of_best_paths(self, small):
        """The first iteration (lambda = 0) is exactly the sum of every
        driver's unconstrained best path, which is itself a valid bound."""
        from repro.offline import best_path

        result = lagrangian_bound(small, iterations=1)
        expected = sum(
            best_path(small.task_map(d.driver_id)).profit for d in small.drivers
        )
        assert result.bounds_per_iteration[0] == pytest.approx(expected, rel=1e-9)

    def test_bound_not_above_lp_plus_duality_gap_margin(self, small):
        """With the Polyak step the Lagrangian bound should land in the same
        ballpark as the LP bound (they coincide at the optimum multipliers)."""
        greedy = greedy_assignment(small).total_value
        lp = lp_relaxation_bound(small).upper_bound
        lagr = lagrangian_bound(small, iterations=60, target_value=greedy).upper_bound
        assert lagr >= lp - 1e-6
        assert lagr <= lp * 1.5 + 1.0


class TestLagrangianConvergence:
    """Convergence behaviour of the subgradient loop (exact-tier satellite):
    the *reported* bound is a running minimum over the trajectory, so it is
    monotone by construction — and no iterate may ever dip below a feasible
    incumbent, or the "bound" would not be one."""

    def test_running_minimum_is_monotone_non_increasing(self, small):
        result = lagrangian_bound(small, iterations=30)
        best_so_far = np.minimum.accumulate(result.bounds_per_iteration)
        assert (np.diff(best_so_far) <= 1e-9).all()
        assert result.upper_bound == pytest.approx(best_so_far[-1])

    def test_no_iterate_below_the_incumbent(self, small):
        """Every L(lambda_k) is a valid upper bound on Z*, hence on any
        feasible value — including greedy's — at every single iteration."""
        greedy = greedy_assignment(small).total_value
        for target in (None, greedy):
            result = lagrangian_bound(small, iterations=30, target_value=target)
            for k, bound in enumerate(result.bounds_per_iteration):
                assert bound >= greedy - 1e-6, f"iterate {k} dipped below greedy"

    def test_no_iterate_below_the_exact_optimum(self, small):
        exact = exact_optimum(small).optimum
        result = lagrangian_bound(small, iterations=30, target_value=exact)
        assert min(result.bounds_per_iteration) >= exact - 1e-6

    def test_more_iterations_never_loosen_the_bound(self, small):
        greedy = greedy_assignment(small).total_value
        bounds = [
            lagrangian_bound(small, iterations=n, target_value=greedy).upper_bound
            for n in (1, 5, 15, 40)
        ]
        assert (np.diff(bounds) <= 1e-9).all()

    def test_trajectory_prefix_property(self, small):
        """Iterate k depends only on iterates < k, so a shorter run is a
        strict prefix of a longer one — the determinism the per-shard bounds
        in parity contract 17 rely on."""
        greedy = greedy_assignment(small).total_value
        short = lagrangian_bound(small, iterations=8, target_value=greedy)
        long = lagrangian_bound(small, iterations=20, target_value=greedy)
        assert long.bounds_per_iteration[:8] == short.bounds_per_iteration
