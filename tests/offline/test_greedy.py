"""Tests for the greedy algorithm (Algorithm 1)."""

import pytest

from repro.core import Objective
from repro.offline import (
    GreedySolver,
    brute_force_optimum,
    build_tight_example,
    greedy_assignment,
)
from repro.market import market_diameter

from ..conftest import build_chain_instance, build_random_instance


@pytest.fixture(scope="module")
def chain():
    return build_chain_instance()


class TestGreedyOnChainInstance:
    def test_assigns_chain_to_chainer(self, chain):
        solution = greedy_assignment(chain)
        solution.validate()
        assert solution.plan_for("chainer").task_indices == (0, 1)
        assert solution.plan_for("stranded").task_indices == ()
        assert solution.total_value == pytest.approx(10.0, rel=0.01)
        assert solution.serve_rate == 1.0

    def test_stats_reflect_work_done(self, chain):
        result = GreedySolver().solve(chain)
        assert result.stats.iterations == 1
        assert result.stats.drivers_assigned == 1
        assert result.stats.tasks_assigned == 2
        # Drivers whose task map admits no entry task ("stranded") are
        # prescreened out before any best-path computation.
        assert 1 <= result.stats.paths_recomputed <= chain.driver_count

    def test_social_welfare_objective(self, chain):
        solution = greedy_assignment(chain, objective=Objective.SOCIAL_WELFARE)
        solution.validate()
        assert solution.objective is Objective.SOCIAL_WELFARE
        # Without explicit WTP the two objectives coincide.
        assert solution.total_value == pytest.approx(
            greedy_assignment(chain).total_value
        )


class TestGreedyFeasibilityAndInvariants:
    @pytest.mark.parametrize("seed", [1, 2, 3, 4, 5])
    def test_solutions_are_feasible(self, seed):
        instance = build_random_instance(task_count=35, driver_count=9, seed=seed)
        solution = greedy_assignment(instance)
        solution.validate()

    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_every_assigned_driver_earns_positive_profit(self, seed):
        instance = build_random_instance(task_count=35, driver_count=9, seed=seed)
        solution = greedy_assignment(instance)
        for plan in solution.iter_nonempty_plans():
            assert plan.profit > 0.0

    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_no_task_served_twice(self, seed):
        instance = build_random_instance(task_count=35, driver_count=9, seed=seed)
        solution = greedy_assignment(instance)
        all_tasks = [m for plan in solution.plans for m in plan.task_indices]
        assert len(all_tasks) == len(set(all_tasks))

    def test_total_value_at_least_best_single_path(self):
        """The first greedy iteration takes the single best path over all
        drivers, and every later iteration adds a strictly positive path, so
        the total can never fall below any driver's individual best path."""
        from repro.offline import best_path

        instance = build_random_instance(task_count=40, driver_count=12, seed=6)
        solution = greedy_assignment(instance)
        best_single = max(
            best_path(instance.task_map(d.driver_id)).profit for d in instance.drivers
        )
        assert solution.total_value >= best_single - 1e-9

    def test_deterministic(self):
        instance = build_random_instance(task_count=30, driver_count=8, seed=7)
        a = greedy_assignment(instance)
        b = greedy_assignment(instance)
        assert a.assignment() == b.assignment()


class TestApproximationGuarantee:
    """Theorem 1: greedy >= OPT / (D + 1)."""

    @pytest.mark.parametrize("seed", [11, 12, 13, 14])
    def test_ratio_against_exact_optimum(self, seed):
        from repro.offline import exact_optimum

        instance = build_random_instance(task_count=14, driver_count=4, seed=seed)
        greedy = greedy_assignment(instance).total_value
        optimum = exact_optimum(instance).optimum
        diameter = market_diameter(instance)
        assert greedy <= optimum + 1e-6
        assert greedy >= optimum / (diameter + 1) - 1e-6

    def test_tight_example_ratio(self):
        example = build_tight_example(chain_length=4, epsilon=0.05)
        greedy = greedy_assignment(example.instance)
        greedy.validate()
        assert greedy.total_value == pytest.approx(example.expected_greedy_value, rel=1e-6)
        # The achieved ratio sits just above the theoretical 1/(D+1) bound.
        ratio = example.expected_greedy_value / example.expected_optimal_value
        assert example.theoretical_bound <= ratio <= example.theoretical_bound + 0.08

    def test_tight_example_worsens_with_chain_length(self):
        short = build_tight_example(chain_length=3, epsilon=0.02)
        long = build_tight_example(chain_length=8, epsilon=0.02)
        assert long.expected_ratio < short.expected_ratio
