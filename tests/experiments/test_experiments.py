"""Integration tests for the per-figure experiment modules (tiny scale)."""

import pytest

from repro.analysis import BoundKind
from repro.experiments import (
    ALGORITHM_NAMES,
    GREEDY,
    MAX_MARGIN,
    NEAREST,
    ExperimentConfig,
    TINY_SCALE,
    run_all,
    run_distribution_experiment,
    run_fig5,
    run_market_insight_sweep,
    run_partition_ablation,
    run_surge_ablation,
    standard_algorithms,
)
from repro.experiments.fig6_9 import FIGURE_METRICS
from repro.trace import WorkingModel

from ..conftest import build_random_instance

TINY_CONFIG = ExperimentConfig(scale=TINY_SCALE)


class TestAlgorithmRoster:
    def test_roster_names(self):
        assert ALGORITHM_NAMES == (GREEDY, MAX_MARGIN, NEAREST)
        assert [spec.name for spec in standard_algorithms()] == list(ALGORITHM_NAMES)

    def test_run_all_returns_comparable_results(self):
        instance = build_random_instance(task_count=20, driver_count=6, seed=61)
        results = run_all(instance)
        assert set(results) == set(ALGORITHM_NAMES)
        for result in results.values():
            assert result.total_value >= 0.0
            assert 0.0 <= result.serve_rate <= 1.0


class TestDistributionExperiment:
    def test_fig3_fig4_summaries(self):
        result = run_distribution_experiment(TINY_CONFIG)
        assert result.trip_count == TINY_SCALE.task_count
        assert result.travel_time.heaviness > 1.5
        assert result.travel_distance.heaviness > 1.5
        rendered = result.render()
        assert "Fig. 3" in rendered and "Fig. 4" in rendered


class TestFig5:
    @pytest.fixture(scope="class")
    def result(self):
        return run_fig5(config=TINY_CONFIG, bound_kind=BoundKind.LP_RELAXATION)

    def test_structure(self, result):
        assert result.driver_counts == TINY_SCALE.driver_counts
        for point in result.points:
            assert set(point.ratios) == set(ALGORITHM_NAMES)
            assert point.upper_bound > 0.0

    def test_ratios_at_least_one(self, result):
        for name in ALGORITHM_NAMES:
            for ratio in result.ratio_series(name):
                assert ratio >= 1.0 - 1e-6

    def test_greedy_beats_nearest_on_average(self, result):
        assert result.mean_efficiency(GREEDY) >= result.mean_efficiency(NEAREST) - 1e-9

    def test_render_contains_all_algorithms(self, result):
        rendered = result.render()
        for name in ALGORITHM_NAMES:
            assert name in rendered

    def test_home_work_home_variant_runs(self):
        result = run_fig5(
            config=ExperimentConfig(scale=TINY_SCALE, working_model=WorkingModel.HOME_WORK_HOME),
            bound_kind=BoundKind.LAGRANGIAN,
        )
        assert result.working_model is WorkingModel.HOME_WORK_HOME
        assert result.bound_kind is BoundKind.LAGRANGIAN
        for name in ALGORITHM_NAMES:
            assert all(r >= 1.0 - 1e-6 for r in result.ratio_series(name))


class TestFig6To9:
    @pytest.fixture(scope="class")
    def result(self):
        return run_market_insight_sweep(config=TINY_CONFIG)

    def test_all_metrics_available(self, result):
        for metric in FIGURE_METRICS:
            series = result.figure_series(metric)
            assert set(series) == set(ALGORITHM_NAMES)
            assert all(len(v) == len(result.driver_counts) for v in series.values())

    def test_fig6_revenue_grows_with_market_density(self, result):
        for name in ALGORITHM_NAMES:
            series = result.series(name, "total_revenue")
            assert series.trend() >= 0.0

    def test_fig7_serve_rate_grows_with_market_density(self, result):
        for name in ALGORITHM_NAMES:
            series = result.series(name, "serve_rate")
            assert series.trend() >= 0.0
            assert all(0.0 <= v <= 1.0 for v in series.values)

    def test_fig8_fig9_congestion_declines(self, result):
        for name in ALGORITHM_NAMES:
            assert result.series(name, "revenue_per_driver").trend() <= 0.0
            assert result.series(name, "tasks_per_driver").trend() <= 0.0

    def test_render_all_mentions_each_figure(self, result):
        text = result.render_all()
        for figure in ("Fig. 6", "Fig. 7", "Fig. 8", "Fig. 9"):
            assert figure in text


class TestAblations:
    def test_surge_ablation_monotone_profit(self):
        result = run_surge_ablation(multipliers=(1.0, 1.5, 2.0), config=TINY_CONFIG)
        profits = [p.total_profit for p in result.points]
        assert profits == sorted(profits)
        assert "alpha" in result.render()

    def test_surge_ablation_invalid_multiplier(self):
        with pytest.raises(ValueError):
            run_surge_ablation(multipliers=(0.0,), config=TINY_CONFIG)

    def test_partition_ablation_retention(self):
        result = run_partition_ablation(grids=((1, 1), (2, 2)), config=TINY_CONFIG)
        assert result.points[0].value_retention == pytest.approx(1.0, rel=1e-6)
        assert 0.0 <= result.points[1].value_retention <= 1.05
        assert "retention" in result.render()
