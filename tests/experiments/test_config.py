"""Tests for the experiment configuration and workload builder."""

import pytest

from repro.experiments import (
    DEFAULT_SCALE,
    PAPER_SCALE,
    TINY_SCALE,
    ExperimentConfig,
    ExperimentScale,
    build_day_trips,
    build_workload,
)
from repro.trace import WorkingModel


class TestExperimentScale:
    def test_paper_scale_matches_paper(self):
        assert PAPER_SCALE.task_count == 1000
        assert PAPER_SCALE.driver_counts[0] == 20
        assert PAPER_SCALE.max_drivers == 300

    def test_invalid_scales(self):
        with pytest.raises(ValueError):
            ExperimentScale(task_count=0, driver_counts=(1,), trips_generated=10)
        with pytest.raises(ValueError):
            ExperimentScale(task_count=10, driver_counts=(), trips_generated=20)
        with pytest.raises(ValueError):
            ExperimentScale(task_count=10, driver_counts=(0,), trips_generated=20)
        with pytest.raises(ValueError):
            ExperimentScale(task_count=100, driver_counts=(5,), trips_generated=10)

    def test_default_scale_is_smaller_than_paper_scale(self):
        assert DEFAULT_SCALE.task_count <= PAPER_SCALE.task_count
        assert DEFAULT_SCALE.max_drivers <= PAPER_SCALE.max_drivers


class TestExperimentConfig:
    def test_pricing_policy_uses_surge_multiplier(self):
        cfg = ExperimentConfig(surge_multiplier=1.7)
        policy = cfg.pricing_policy()
        assert policy.alpha == pytest.approx(1.7)


class TestBuildWorkload:
    @pytest.fixture(scope="class")
    def workload(self):
        return build_workload(ExperimentConfig(scale=TINY_SCALE))

    def test_day_trips_count(self):
        trips = build_day_trips(ExperimentConfig(scale=TINY_SCALE))
        assert len(trips) == TINY_SCALE.task_count

    def test_workload_sizes(self, workload):
        assert workload.task_count == TINY_SCALE.task_count
        assert len(workload.driver_pool) == TINY_SCALE.max_drivers
        assert workload.base_instance.driver_count == TINY_SCALE.max_drivers

    def test_instance_with_drivers_prefix_property(self, workload):
        small = workload.instance_with_drivers(2)
        bigger = workload.instance_with_drivers(6)
        assert small.driver_count == 2
        assert bigger.driver_count == 6
        assert [d.driver_id for d in small.drivers] == [d.driver_id for d in bigger.drivers[:2]]
        # Tasks and the shared network are reused across the sweep.
        assert small.task_network is workload.base_instance.task_network

    def test_instance_with_drivers_bounds(self, workload):
        with pytest.raises(ValueError):
            workload.instance_with_drivers(0)
        with pytest.raises(ValueError):
            workload.instance_with_drivers(10_000)

    def test_working_model_respected(self):
        workload = build_workload(
            ExperimentConfig(scale=TINY_SCALE, working_model=WorkingModel.HOME_WORK_HOME)
        )
        assert all(d.is_home_work_home for d in workload.driver_pool)

    def test_workload_is_deterministic(self):
        a = build_workload(ExperimentConfig(scale=TINY_SCALE))
        b = build_workload(ExperimentConfig(scale=TINY_SCALE))
        assert [t.task_id for t in a.base_instance.tasks] == [
            t.task_id for t in b.base_instance.tasks
        ]
        assert [d.driver_id for d in a.driver_pool] == [d.driver_id for d in b.driver_pool]
        assert [t.price for t in a.base_instance.tasks] == [
            t.price for t in b.base_instance.tasks
        ]
