"""Smoke test for the one-call experiment runner."""

import pytest

from repro.analysis import BoundKind
from repro.experiments import TINY_SCALE, run_everything


@pytest.fixture(scope="module")
def full_run():
    # The Lagrangian bound keeps the tiny-scale full run fast.
    return run_everything(scale=TINY_SCALE, bound_kind=BoundKind.LAGRANGIAN)


class TestRunEverything:
    def test_all_sections_present(self, full_run):
        rendered = full_run.render()
        for marker in (
            "Fig. 3",
            "Fig. 4",
            "Fig. 5",
            "Fig. 6",
            "Fig. 9",
            "Surge-multiplier ablation",
            "Partitioning ablation",
        ):
            assert marker in rendered

    def test_both_working_models_covered(self, full_run):
        assert full_run.fig5_hitchhiking.working_model.value == "hitchhiking"
        assert full_run.fig5_home_work_home.working_model.value == "home_work_home"

    def test_ratios_respect_bounds(self, full_run):
        for result in (full_run.fig5_hitchhiking, full_run.fig5_home_work_home):
            for point in result.points:
                for ratio in point.ratios.values():
                    assert ratio >= 1.0 - 1e-6

    def test_market_insights_trends(self, full_run):
        insights = full_run.market_insights
        for name in ("Greedy", "maxMargin", "Nearest"):
            assert insights.series(name, "total_revenue").trend() >= 0.0
            assert insights.series(name, "revenue_per_driver").trend() <= 0.0
