"""Setuptools shim.

The project is configured in ``pyproject.toml``; this file exists so that
``python setup.py develop`` works in fully offline environments where pip
cannot build an editable wheel (no ``wheel`` package available).
"""

from setuptools import setup

setup()
